"""TGraph: storage and management of a continuous-time temporal graph.

The central hub for all data related to a CTDG dataset.  Edges are kept in
COO form sorted by timestamp (the common chronological-iteration case is a
slice), and a temporal CSR adjacency is built lazily the first time a model
needs neighborhood sampling.  Node/edge feature tensors and the optional
:class:`~repro.core.memory.Memory` / :class:`~repro.core.mailbox.Mailbox`
components also hang off the graph, giving users one place to access
everything (and giving TGLite one place to optimize data movement).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..tensor import Tensor
from .mailbox import Mailbox
from .memory import Memory

__all__ = ["TGraph", "TemporalCSR", "from_edges"]


class TemporalCSR:
    """Compressed sparse adjacency with per-node time-sorted neighbor lists.

    For each node ``v``, ``indices[indptr[v]:indptr[v+1]]`` are the
    neighbors of ``v`` with matching ``eids`` and ``etimes``, sorted by
    ascending edge timestamp so that a binary search finds the temporal
    cutoff for sampling.
    """

    __slots__ = ("indptr", "indices", "eids", "etimes")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, eids: np.ndarray, etimes: np.ndarray):
        self.indptr = indptr
        self.indices = indices
        self.eids = eids
        self.etimes = etimes

    @property
    def num_nodes(self) -> int:
        return len(self.indptr) - 1

    def degree(self, node: int) -> int:
        return int(self.indptr[node + 1] - self.indptr[node])

    def neighbors_before(self, node: int, time: float) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All temporal neighbors of *node* with edge timestamp strictly < *time*."""
        lo = self.indptr[node]
        hi = self.indptr[node + 1]
        cut = lo + np.searchsorted(self.etimes[lo:hi], time, side="left")
        return self.indices[lo:cut], self.eids[lo:cut], self.etimes[lo:cut]


def _build_temporal_csr(
    src: np.ndarray,
    dst: np.ndarray,
    ts: np.ndarray,
    num_nodes: int,
    add_reverse: bool,
) -> TemporalCSR:
    eids = np.arange(len(src), dtype=np.int64)
    if add_reverse:
        endpoints = np.concatenate([src, dst])
        neighbors = np.concatenate([dst, src])
        all_eids = np.concatenate([eids, eids])
        all_ts = np.concatenate([ts, ts])
    else:
        endpoints, neighbors, all_eids, all_ts = src, dst, eids, ts
    # Sort by (endpoint, time): grouping per node with ascending timestamps.
    order = np.lexsort((all_ts, endpoints))
    endpoints = endpoints[order]
    neighbors = neighbors[order]
    all_eids = all_eids[order]
    all_ts = all_ts[order]
    counts = np.bincount(endpoints, minlength=num_nodes)
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return TemporalCSR(indptr, neighbors.astype(np.int64), all_eids, all_ts)


def _check_edge_arrays(src: np.ndarray, dst: np.ndarray, ts: np.ndarray) -> None:
    """Reject malformed edge arrays with errors naming the offending index.

    Production event streams carry NaN/Inf timestamps, negative times from
    clock bugs, and negative node ids from failed joins; letting any of
    them into the sorted COO storage corrupts the temporal CSR and every
    downstream invariant, so they are rejected at the door.
    """
    if len(ts):
        finite = np.isfinite(ts)
        if not finite.all():
            i = int(np.flatnonzero(~finite)[0])
            raise ValueError(f"non-finite edge timestamp {ts[i]} at index {i}")
        if ts.min() < 0:
            i = int(np.flatnonzero(ts < 0)[0])
            raise ValueError(f"negative edge timestamp {ts[i]} at index {i}")
    for name, arr in (("src", src), ("dst", dst)):
        if len(arr) and arr.min() < 0:
            i = int(np.flatnonzero(arr < 0)[0])
            raise ValueError(f"negative {name} node id {arr[i]} at index {i}")


class TGraph:
    """A continuous-time temporal graph.

    Args:
        src: int array of source node ids, one per temporal edge.
        dst: int array of destination node ids.
        ts: float array of edge timestamps.  Edges are re-sorted
            chronologically (stably) on construction.
        num_nodes: total node count; inferred from the edge list if omitted.
        add_reverse: whether the sampling adjacency treats edges as
            undirected (both endpoints see each other), matching TGL.
    """

    def __init__(
        self,
        src,
        dst,
        ts,
        num_nodes: Optional[int] = None,
        add_reverse: bool = True,
    ):
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        ts = np.asarray(ts, dtype=np.float64)
        if not (len(src) == len(dst) == len(ts)):
            raise ValueError("src, dst, ts must have equal lengths")
        _check_edge_arrays(src, dst, ts)
        order = np.argsort(ts, kind="stable")
        if not np.array_equal(order, np.arange(len(ts))):
            src, dst, ts = src[order], dst[order], ts[order]
        self.src = src
        self.dst = dst
        self.ts = ts
        inferred = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1) if len(src) else 0
        self.num_nodes = int(num_nodes) if num_nodes is not None else inferred
        if self.num_nodes < inferred:
            raise ValueError(f"num_nodes={num_nodes} smaller than max node id {inferred - 1}")
        self.add_reverse = add_reverse

        self._csr: Optional[TemporalCSR] = None
        self._nfeat: Optional[Tensor] = None
        self._efeat: Optional[Tensor] = None
        self.mem: Optional[Memory] = None
        self.mailbox: Optional[Mailbox] = None
        self.ctx = None  # back-reference set by TContext

    # ---- basic stats ----------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        return len(self.src)

    @property
    def max_time(self) -> float:
        return float(self.ts[-1]) if len(self.ts) else 0.0

    def edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The chronologically-sorted COO edge arrays ``(src, dst, ts)``."""
        return self.src, self.dst, self.ts

    def __repr__(self) -> str:
        return (
            f"TGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"max_t={self.max_time:.3g})"
        )

    # ---- adjacency -------------------------------------------------------------------

    def csr(self) -> TemporalCSR:
        """The temporal CSR adjacency, built lazily on first use."""
        if self._csr is None:
            self._csr = _build_temporal_csr(
                self.src, self.dst, self.ts, self.num_nodes, self.add_reverse
            )
        return self._csr

    # ---- feature storage ----------------------------------------------------------------

    @property
    def nfeat(self) -> Optional[Tensor]:
        return self._nfeat

    def set_nfeat(self, feat: Union[Tensor, np.ndarray]) -> None:
        """Attach node features (shape ``(num_nodes, d_v)``)."""
        feat = feat if isinstance(feat, Tensor) else Tensor(feat)
        if feat.shape[0] != self.num_nodes:
            raise ValueError(f"nfeat rows {feat.shape[0]} != num_nodes {self.num_nodes}")
        self._nfeat = feat

    @property
    def efeat(self) -> Optional[Tensor]:
        return self._efeat

    def set_efeat(self, feat: Union[Tensor, np.ndarray]) -> None:
        """Attach edge features (shape ``(num_edges, d_e)``), chronologically ordered."""
        feat = feat if isinstance(feat, Tensor) else Tensor(feat)
        if feat.shape[0] != self.num_edges:
            raise ValueError(f"efeat rows {feat.shape[0]} != num_edges {self.num_edges}")
        self._efeat = feat

    @property
    def nfeat_dim(self) -> int:
        return self._nfeat.shape[1] if self._nfeat is not None else 0

    @property
    def efeat_dim(self) -> int:
        return self._efeat.shape[1] if self._efeat is not None else 0

    # ---- memory / mailbox ------------------------------------------------------------------

    def set_memory(self, dim: int, device=None) -> Memory:
        """Attach node memory storage of width *dim*."""
        self.mem = Memory(self.num_nodes, dim, device=device)
        return self.mem

    def set_mailbox(self, dim: int, slots: int = 1, device=None) -> Mailbox:
        """Attach a mailbox with *slots* message slots of width *dim* per node."""
        self.mailbox = Mailbox(self.num_nodes, dim, slots=slots, device=device)
        return self.mailbox

    def reset_state(self) -> None:
        """Zero memory and mailbox (between epochs / before inference replay)."""
        if self.mem is not None:
            self.mem.reset()
        if self.mailbox is not None:
            self.mailbox.reset()


def from_edges(src, dst, ts, **kwargs) -> TGraph:
    """Convenience constructor mirroring ``tglite.from_edges``."""
    return TGraph(src, dst, ts, **kwargs)


def to_networkx(g: TGraph, max_time: Optional[float] = None):
    """Export (a temporal prefix of) the graph as a networkx MultiGraph.

    Each temporal edge becomes one parallel edge carrying ``time`` and
    ``eid`` attributes, enabling ad-hoc analysis with the networkx
    toolbox (connectivity, clustering, ...).

    Args:
        g: the temporal graph.
        max_time: only include edges with timestamp strictly below this
            (None = all edges).
    """
    import networkx as nx

    graph = nx.MultiGraph()
    graph.add_nodes_from(range(g.num_nodes))
    stop = g.num_edges if max_time is None else int(np.searchsorted(g.ts, max_time, side="left"))
    for eid in range(stop):
        graph.add_edge(int(g.src[eid]), int(g.dst[eid]),
                       time=float(g.ts[eid]), eid=eid)
    return graph
