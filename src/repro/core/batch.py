"""TBatch: a thin wrapper around a contiguous batch of temporal edges.

Rather than haphazardly passing several node/timestamp arrays around, a
TBatch holds a :class:`~repro.core.graph.TGraph` reference plus the batch's
edge-index range and materializes derived arrays (node lists, head blocks,
adjacency blocks) only when asked.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from .block import TBlock

if TYPE_CHECKING:  # pragma: no cover
    from .context import TContext
    from .graph import TGraph

__all__ = ["TBatch", "iter_batches"]


class TBatch:
    """A batch of chronologically contiguous temporal edges.

    Args:
        g: the temporal graph.
        start: first edge index of the batch (inclusive).
        stop: one past the last edge index.
        neg_nodes: optional array of negative-sample node ids, one per
            positive edge, attached by the training loop for link
            prediction.
    """

    def __init__(self, g: "TGraph", start: int, stop: int, neg_nodes: Optional[np.ndarray] = None):
        if not 0 <= start <= stop <= g.num_edges:
            raise ValueError(f"invalid batch range [{start}, {stop}) for {g.num_edges} edges")
        self.g = g
        self.start = int(start)
        self.stop = int(stop)
        self.neg_nodes = neg_nodes

    # ---- lazily materialized views -------------------------------------------------

    def __len__(self) -> int:
        return self.stop - self.start

    @property
    def size(self) -> int:
        return len(self)

    @property
    def eids(self) -> np.ndarray:
        return np.arange(self.start, self.stop, dtype=np.int64)

    @property
    def src(self) -> np.ndarray:
        return self.g.src[self.start : self.stop]

    @property
    def dst(self) -> np.ndarray:
        return self.g.dst[self.start : self.stop]

    @property
    def ts(self) -> np.ndarray:
        return self.g.ts[self.start : self.stop]

    def nodes(self) -> np.ndarray:
        """Source nodes, destination nodes, then negatives (if attached)."""
        parts = [self.src, self.dst]
        if self.neg_nodes is not None:
            parts.append(self.neg_nodes)
        return np.concatenate(parts)

    def times(self) -> np.ndarray:
        """Timestamps aligned with :meth:`nodes` (the batch times, tiled)."""
        reps = 3 if self.neg_nodes is not None else 2
        return np.tile(self.ts, reps)

    # ---- block constructors ------------------------------------------------------------

    def block(self, ctx: "TContext") -> TBlock:
        """Head TBlock whose destinations are the batch's target node-time
        pairs: sources, destinations, and negatives, all at the batch's
        edge timestamps.  This is what embedding computation starts from.
        """
        return TBlock(ctx, 0, self.nodes(), self.times())

    def block_adj(self, ctx: "TContext") -> TBlock:
        """A block capturing the batch edges themselves as adjacency.

        Destinations are the batch's endpoint nodes (with duplicates — use
        ``op.coalesce`` to reduce); each batch edge contributes two source
        rows, one per direction, carrying the edge id and timestamp.  Used
        by memory-based models to build mailbox messages (e.g. Listing 4's
        ``save_raw_msgs``).
        """
        src, dst, ts = self.src, self.dst, self.ts
        endpoints = np.concatenate([src, dst])
        neighbors = np.concatenate([dst, src])
        eids = np.concatenate([self.eids, self.eids])
        etimes = np.concatenate([ts, ts])
        blk = TBlock(ctx, 0, endpoints, etimes.astype(np.float64))
        blk.set_nbrs(neighbors, eids, etimes.astype(np.float64), np.arange(len(endpoints), dtype=np.int64))
        return blk

    def __repr__(self) -> str:
        return f"TBatch(edges=[{self.start}, {self.stop}), size={len(self)})"


def iter_batches(
    g: "TGraph",
    batch_size: int,
    start: int = 0,
    stop: Optional[int] = None,
) -> Iterator[TBatch]:
    """Yield chronologically contiguous :class:`TBatch` slices of *g*.

    Args:
        g: the temporal graph (edges already time-sorted).
        batch_size: edges per batch (the final batch may be smaller).
        start: first edge index to cover.
        stop: one past the last edge index (defaults to all edges).
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    stop = g.num_edges if stop is None else stop
    for lo in range(start, stop, batch_size):
        yield TBatch(g, lo, min(lo + batch_size, stop))
