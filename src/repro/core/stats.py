"""Unified instrumentation snapshot for :class:`~repro.core.context.TContext`.

Historically the context exposed three overlapping surfaces —
``cache_stats()``, ``op_stats()``, ``reset_counters()`` plus ad-hoc
per-pool counters.  They are unified behind ``ctx.stats()`` (returning a
frozen :class:`ContextStats` snapshot of everything in one read) and
``ctx.reset_stats()``; the old methods remain as thin deprecation shims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["CacheLayerStats", "PinnedPoolStats", "LatencyStats", "ContextStats"]


@dataclass(frozen=True)
class CacheLayerStats:
    """Hit statistics of one per-layer embedding cache (its hot tier)."""

    hits: int
    lookups: int
    entries: int
    #: resident entries displaced from the hot ring (demoted or dropped).
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass(frozen=True)
class PinnedPoolStats:
    """Buffer-reuse statistics of the pinned staging pool."""

    hits: int
    misses: int


@dataclass(frozen=True)
class LatencyStats:
    """Request-latency distribution recorded via ``ctx.record_latency``.

    Percentiles are computed over a bounded reservoir of the most recent
    samples (the serving runtime's per-request end-to-end latencies on
    the simulated clock); ``count`` is the total ever recorded.
    """

    count: int
    p50: float
    p99: float
    mean: float


@dataclass(frozen=True)
class ContextStats:
    """One coherent snapshot of a context's instrumentation.

    Produced by :meth:`TContext.stats`; values are copies, so a snapshot
    taken before an epoch can be compared against one taken after.
    """

    #: raw operator counters (e.g. ``dedup_rows_in``), see ``ctx.count()``.
    counters: Dict[str, int] = field(default_factory=dict)
    #: per-layer embedding-cache statistics.
    cache: Dict[int, CacheLayerStats] = field(default_factory=dict)
    #: pinned staging-pool statistics.
    pinned: PinnedPoolStats = PinnedPoolStats(0, 0)
    #: accumulated wall-clock seconds per kernel (sample, cache_lookup, ...).
    kernel_seconds: Dict[str, float] = field(default_factory=dict)
    #: kernels downgraded to fallback paths (site -> reason); see
    #: :meth:`TContext.record_kernel_fault`.
    degraded: Dict[str, str] = field(default_factory=dict)
    #: transient kernel faults recorded per site.
    kernel_faults: Dict[str, int] = field(default_factory=dict)
    #: per-request serving latency distribution; None before any request.
    latency: Optional[LatencyStats] = None
    #: tiered feature-store snapshot (bytes moved per tier, prefetch
    #: effectiveness, stall seconds); a
    #: :class:`repro.store.api.StoreStats`, None when no store is wired.
    store: Optional[object] = None

    @property
    def cache_hits(self) -> int:
        return sum(c.hits for c in self.cache.values())

    @property
    def cache_lookups(self) -> int:
        return sum(c.lookups for c in self.cache.values())

    @property
    def cache_hit_rate(self) -> Optional[float]:
        """Aggregate hit rate over all layers; None before any lookup."""
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else None

    @property
    def dedup_reduction(self) -> Optional[float]:
        """Fraction of destination rows removed by dedup; None before use."""
        rows_in = self.counters.get("dedup_rows_in", 0)
        if not rows_in:
            return None
        return 1.0 - self.counters.get("dedup_rows_out", 0) / rows_in

    def as_dict(self) -> Dict[str, float]:
        """Flatten to the historical ``op_stats()`` mapping.

        Raw counters plus the derived ``dedup_reduction`` /
        ``cache_hit_rate`` ratios (present only once meaningful) — the
        numbers §5.2's discussion attributes speedups to.
        """
        flat: Dict[str, float] = dict(self.counters)
        if self.dedup_reduction is not None:
            flat["dedup_reduction"] = self.dedup_reduction
        if self.cache_hit_rate is not None:
            flat["cache_hit_rate"] = self.cache_hit_rate
        for site in self.degraded:
            flat[f"degraded:{site}"] = 1.0
        if self.latency is not None:
            flat["latency_p50"] = self.latency.p50
            flat["latency_p99"] = self.latency.p99
        if self.store is not None:
            for key, value in self.store.as_dict().items():
                flat[f"store:{key}"] = value
        return flat
