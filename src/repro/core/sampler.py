"""TSampler: temporal neighborhood sampling as a block operator.

Given a block's destination node-time pairs, the sampler selects up to
``num_nbrs`` neighbors per pair from the graph's temporal CSR, restricted
to edges strictly earlier than the pair's time (the ``N(i, t)`` of Eq. 2).
Two strategies are supported, matching the paper: ``'recent'`` (most recent
edges first — TGL's default and the setting used in the evaluation) and
``'uniform'`` (uniform over the temporal history).

The original implementation is a 32/64-thread C++ parallel sampler; here
the heavy lifting is done by the batched numpy kernels in
:mod:`repro.core.kernels.sample` — a vectorized per-segment binary search
plus flat segment-offset gathers — which are bit-identical to the per-pair
loop reference (see ``tests/test_kernels.py``) while running orders of
magnitude faster on large destination sets.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..tensor.random import fork_generator
from .block import TBlock
from .kernels import SampleResult, _reference_sample_arrays, temporal_sample

__all__ = ["TSampler"]


class TSampler:
    """Parallel temporal neighborhood sampler.

    Args:
        num_nbrs: maximum neighbors sampled per destination pair.
        strategy: ``'recent'`` or ``'uniform'``.
        seed: RNG seed for the uniform strategy (deterministic sampling).
    """

    def __init__(self, num_nbrs: int, strategy: str = "recent", seed: int = 0):
        if num_nbrs <= 0:
            raise ValueError("num_nbrs must be positive")
        if strategy not in ("recent", "uniform"):
            raise ValueError(f"unknown strategy: {strategy!r}")
        self.num_nbrs = num_nbrs
        self.strategy = strategy
        self._rng = fork_generator(seed)

    def sample(self, block: TBlock, num_nbrs: Optional[int] = None) -> TBlock:
        """Fill *block* with sampled neighbor rows and return it.

        ``num_nbrs`` overrides the configured fanout for this call (the
        serving runtime's degradation ladder shrinks fanout under deadline
        pressure); without it, a ``ctx.fanout_limit`` set on the block's
        context caps the fanout instead.
        """
        start = time.perf_counter()
        result = self.sample_arrays(
            block.g.csr(), block.dstnodes, block.dsttimes, ctx=block.ctx,
            num_nbrs=num_nbrs,
        )
        block.ctx.add_kernel_time("sample", time.perf_counter() - start)
        block.set_nbrs(*result)
        return block

    def effective_fanout(self, ctx=None, num_nbrs: Optional[int] = None) -> int:
        """Resolve the fanout for one call: explicit override, else the
        context's ``fanout_limit`` cap, else the configured ``num_nbrs``."""
        if num_nbrs is not None:
            if num_nbrs <= 0:
                raise ValueError("num_nbrs override must be positive")
            return int(num_nbrs)
        k = self.num_nbrs
        limit = getattr(ctx, "fanout_limit", None) if ctx is not None else None
        if limit is not None:
            k = max(1, min(k, int(limit)))
        return k

    def sample_arrays(
        self,
        csr,
        nodes: np.ndarray,
        times: np.ndarray,
        ctx=None,
        num_nbrs: Optional[int] = None,
    ) -> SampleResult:
        """Core sampling kernel on raw arrays.

        Returns a :class:`~repro.core.kernels.SampleResult` of flat
        ``(srcnodes, eids, etimes, dstindex)`` row arrays.  Destinations
        with no earlier edges simply contribute zero rows.

        When the context has degraded the sampling kernel (repeated
        transient faults; see ``TContext.record_kernel_fault``), the
        bit-identical loop-reference implementation is used instead —
        slower, but it shares no code with the faulty vectorized path.
        """
        k = self.effective_fanout(ctx, num_nbrs)
        if ctx is not None and ctx.is_degraded("kernel.sample"):
            return _reference_sample_arrays(
                csr.indptr,
                csr.indices,
                csr.eids,
                csr.etimes,
                nodes,
                times,
                k,
                strategy=self.strategy,
                rng=self._rng,
            )
        return temporal_sample(
            csr.indptr,
            csr.indices,
            csr.eids,
            csr.etimes,
            nodes,
            times,
            k,
            strategy=self.strategy,
            rng=self._rng,
        )

    def __repr__(self) -> str:
        return f"TSampler(num_nbrs={self.num_nbrs}, strategy='{self.strategy}')"
