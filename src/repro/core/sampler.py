"""TSampler: temporal neighborhood sampling as a block operator.

Given a block's destination node-time pairs, the sampler selects up to
``num_nbrs`` neighbors per pair from the graph's temporal CSR, restricted
to edges strictly earlier than the pair's time (the ``N(i, t)`` of Eq. 2).
Two strategies are supported, matching the paper: ``'recent'`` (most recent
edges first — TGL's default and the setting used in the evaluation) and
``'uniform'`` (uniform over the temporal history).

The original implementation is a 32/64-thread C++ parallel sampler; here
the kernel is a numpy routine whose per-pair work is a binary search plus a
tail slice, which preserves the algorithmic behaviour.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..tensor.random import fork_generator
from .block import TBlock

__all__ = ["TSampler"]


class TSampler:
    """Parallel temporal neighborhood sampler.

    Args:
        num_nbrs: maximum neighbors sampled per destination pair.
        strategy: ``'recent'`` or ``'uniform'``.
        seed: RNG seed for the uniform strategy (deterministic sampling).
    """

    def __init__(self, num_nbrs: int, strategy: str = "recent", seed: int = 0):
        if num_nbrs <= 0:
            raise ValueError("num_nbrs must be positive")
        if strategy not in ("recent", "uniform"):
            raise ValueError(f"unknown strategy: {strategy!r}")
        self.num_nbrs = num_nbrs
        self.strategy = strategy
        self._rng = fork_generator(seed)

    def sample(self, block: TBlock) -> TBlock:
        """Fill *block* with sampled neighbor rows and return it."""
        nbr, eid, ets, dstidx = self.sample_arrays(
            block.g.csr(), block.dstnodes, block.dsttimes
        )
        block.set_nbrs(nbr, eid, ets, dstidx)
        return block

    def sample_arrays(
        self,
        csr,
        nodes: np.ndarray,
        times: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Core sampling kernel on raw arrays.

        Returns ``(srcnodes, eids, etimes, dstindex)`` flat row arrays.
        Destinations with no earlier edges simply contribute zero rows.
        """
        indptr, indices, eids, etimes = csr.indptr, csr.indices, csr.eids, csr.etimes
        k = self.num_nbrs
        n = len(nodes)
        counts = np.empty(n, dtype=np.int64)
        cuts = np.empty(n, dtype=np.int64)
        los = indptr[nodes]
        his = indptr[nodes + 1]
        for i in range(n):
            lo, hi = los[i], his[i]
            cut = lo + np.searchsorted(etimes[lo:hi], times[i], side="left")
            cuts[i] = cut
            counts[i] = min(cut - lo, k)
        total = int(counts.sum())
        out_nbr = np.empty(total, dtype=np.int64)
        out_eid = np.empty(total, dtype=np.int64)
        out_ets = np.empty(total, dtype=np.float64)
        out_idx = np.empty(total, dtype=np.int64)
        pos = 0
        if self.strategy == "recent":
            for i in range(n):
                c = counts[i]
                if c == 0:
                    continue
                cut = cuts[i]
                sel = slice(cut - c, cut)
                out_nbr[pos : pos + c] = indices[sel]
                out_eid[pos : pos + c] = eids[sel]
                out_ets[pos : pos + c] = etimes[sel]
                out_idx[pos : pos + c] = i
                pos += c
        else:
            rng = self._rng
            for i in range(n):
                c = counts[i]
                if c == 0:
                    continue
                lo, cut = los[i], cuts[i]
                avail = cut - lo
                if avail <= c:
                    chosen = np.arange(lo, cut)
                else:
                    chosen = lo + rng.choice(avail, size=c, replace=False)
                    chosen.sort()
                out_nbr[pos : pos + c] = indices[chosen]
                out_eid[pos : pos + c] = eids[chosen]
                out_ets[pos : pos + c] = etimes[chosen]
                out_idx[pos : pos + c] = i
                pos += c
        return out_nbr, out_eid, out_ets, out_idx

    def __repr__(self) -> str:
        return f"TSampler(num_nbrs={self.num_nbrs}, strategy='{self.strategy}')"
