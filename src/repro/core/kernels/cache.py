"""Array-based (node, time) -> slot embedding store.

Backs the hot tier of :class:`repro.store.TieredFeatureStore` (and,
through it, ``op.cache()`` — TGOpt-style memoization — and the manual
baseline's memo table).  Entries live in a ring of ``capacity`` float32
rows; an open-addressing hash table maps each (node, time) key to its
ring slot.  Both ``lookup`` and ``store`` are batched: probing advances
*all* unresolved queries one bucket per pass with full-width numpy ops,
so the per-row Python dict loops of the original implementation
disappear.

Two eviction policies are available:

* ``'fifo'`` (default) — the historical ring: allocations claim
  consecutive slots, wrapping around.  This is the policy the
  ``_Reference*`` loop implementation pins bit-identically.
* ``'reuse'`` — reuse-distance-aware: each slot tracks when it was last
  referenced and an exponential average of its inter-reference gap; a
  full cache evicts the slots whose *predicted next reference*
  (``last_access + gap``) is farthest in the future — a practical
  approximation of Belady's farthest-in-future rule that batches of
  temporal-GNN queries reward (hot nodes re-appear with short, stable
  gaps).  Deterministic: ties break toward the lower slot index.

Batch-store contract (implemented identically by the loop reference for
the ``'fifo'`` policy):

1. *Refresh pass* — keys already resident have their value overwritten
   in place (keeping their ring slot and FIFO position).
2. *Allocation pass* — keys not resident are assigned slots in order of
   first occurrence within the batch; each allocation evicts the slot's
   previous occupant.  Duplicate keys within a batch take their last
   occurrence's value.

Evictions are surfaced explicitly: the ``evictions`` counter counts
every resident entry displaced, and an optional ``on_evict`` callback
receives the displaced ``(nodes, times, rows)`` so an owning tiered
store can demote them to a colder tier instead of silently dropping
them.

A ``capacity <= 0`` store is disabled: lookups miss, stores are no-ops
(this also fixes the historical ``ZeroDivisionError`` for
``TContext(cache_limit=0)``).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ...resilience.hooks import poke as _poke
from .dedup import unique_node_times

__all__ = ["NodeTimeCache", "_ReferenceNodeTimeCache"]

#: eviction policies understood by :class:`NodeTimeCache`.
POLICIES = ("fifo", "reuse")

_EMPTY = -1
_TOMBSTONE = -2


def _hash_keys(nodes: np.ndarray, timebits: np.ndarray) -> np.ndarray:
    """Mix (node id, time bit-pattern) into one 64-bit hash per pair."""
    h = nodes.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
    h ^= timebits * np.uint64(0xBF58476D1CE4E5B9)
    h ^= h >> np.uint64(31)
    h *= np.uint64(0x94D049BB133111EB)
    h ^= h >> np.uint64(29)
    return h


def _canonical_times(times: np.ndarray) -> np.ndarray:
    """float64 times with -0.0 normalized to +0.0 (equal keys, equal bits)."""
    return np.asarray(times, dtype=np.float64) + 0.0


class NodeTimeCache:
    """Bounded (node, time) -> embedding row store with batched kernels.

    Args:
        capacity: ring size in rows; ``<= 0`` disables the cache.
        dim: row width; discovered from the first ``store`` if omitted.
        timer: optional ``(name, seconds)`` callback fed per-kernel wall
            time (wired to :meth:`TContext.stats` by the context).
        policy: eviction policy, ``'fifo'`` (historical ring) or
            ``'reuse'`` (reuse-distance-aware; see module docstring).
        on_evict: optional callback receiving ``(nodes, times, rows)``
            for every batch of displaced resident entries, letting a
            tiered store demote them instead of dropping them.
    """

    def __init__(self, capacity: int, dim: Optional[int] = None,
                 timer: Optional[Callable[[str, float], None]] = None,
                 policy: str = "fifo",
                 on_evict: Optional[Callable[[np.ndarray, np.ndarray, np.ndarray], None]] = None):
        if policy not in POLICIES:
            raise ValueError(f"unknown eviction policy {policy!r} (expected one of {POLICIES})")
        self.capacity = int(capacity)
        self.dim = dim
        self.policy = policy
        self.on_evict = on_evict
        self.hits = 0
        self.lookups = 0
        self.evictions = 0
        self._timer = timer
        # Reuse-distance bookkeeping (only maintained under policy='reuse'):
        # a logical access tick, per-slot last-access tick, and per-slot
        # EMA of the inter-access gap (predicted next ref = last + gap).
        self._tick = 0
        self._last_access: Optional[np.ndarray] = None
        self._gap: Optional[np.ndarray] = None
        self._values: Optional[np.ndarray] = None
        self._slot_nodes: Optional[np.ndarray] = None
        self._slot_times: Optional[np.ndarray] = None
        self._nslots = 0  # slots written so far (== capacity once wrapped)
        self._cursor = 0
        if self.capacity > 0:
            nbuckets = 8
            while nbuckets < 4 * self.capacity:
                nbuckets <<= 1
            self._nbuckets = nbuckets
        else:
            self._nbuckets = 0
        self._mask = np.int64(self._nbuckets - 1)
        self._table: Optional[np.ndarray] = None
        self._used = 0
        self._tombs = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def num_entries(self) -> int:
        """Slots currently holding a stored row (≤ capacity)."""
        return self._nslots

    # ---- public kernels ---------------------------------------------------------

    def lookup(self, nodes: np.ndarray, times: np.ndarray) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Return ``(hit_mask, rows)`` for each (node, time) query pair.

        ``rows`` is ``None`` until the first store (or when disabled);
        otherwise a float32 ``(n, dim)`` array with hit rows filled in.
        """
        _poke("kernel.cache")  # fault-injection site (no-op unless armed)
        start = time.perf_counter() if self._timer else 0.0
        n = len(nodes)
        self.lookups += n
        hit = np.zeros(n, dtype=bool)
        if self._values is None or n == 0:
            if self._timer:
                self._timer("cache_lookup", time.perf_counter() - start)
            return hit, None
        nodes = np.asarray(nodes, dtype=np.int64)
        times = _canonical_times(times)
        _, slots = self._probe_find(nodes, times)
        hit = slots >= 0
        rows = np.zeros((n, self.dim), dtype=np.float32)
        rows[hit] = self._values[slots[hit]]
        self.hits += int(hit.sum())
        if self.policy == "reuse" and hit.any():
            self._touch(np.unique(slots[hit]))
        if self._timer:
            self._timer("cache_lookup", time.perf_counter() - start)
        return hit, rows

    def contains(self, nodes: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Side-effect-free residency probe: boolean mask per query pair.

        Unlike :meth:`lookup`, this perturbs nothing — no hit/lookup
        counters, no reuse-distance touches — so cost estimators (e.g.
        the serve ladder's fetch-penalty model) can ask "would this hit?"
        without distorting the statistics they are estimating from.
        """
        n = len(nodes)
        if self._values is None or n == 0:
            return np.zeros(n, dtype=bool)
        nodes = np.asarray(nodes, dtype=np.int64)
        times = _canonical_times(times)
        _, slots = self._probe_find(nodes, times)
        return slots >= 0

    def _touch(self, slots: np.ndarray) -> None:
        """Advance the access tick and fold it into per-slot reuse stats."""
        self._tick += 1
        observed = (self._tick - self._last_access[slots]).astype(np.float64)
        self._gap[slots] = 0.5 * self._gap[slots] + 0.5 * observed
        self._last_access[slots] = self._tick

    def store(self, nodes: np.ndarray, times: np.ndarray, values: np.ndarray) -> None:
        if not self.enabled or len(nodes) == 0:
            return
        _poke("kernel.cache")  # fault-injection site (no-op unless armed)
        start = time.perf_counter() if self._timer else 0.0
        values = np.asarray(values)
        self._ensure(values.shape[1])
        nodes = np.asarray(nodes, dtype=np.int64)
        times = _canonical_times(times)

        # Batch dedupe: unique keys with first/last occurrence positions.
        un, ut, inverse = unique_node_times(nodes, times)
        nq = len(nodes)
        first = np.full(len(un), nq, dtype=np.int64)
        np.minimum.at(first, inverse, np.arange(nq, dtype=np.int64))
        last = np.zeros(len(un), dtype=np.int64)
        np.maximum.at(last, inverse, np.arange(nq, dtype=np.int64))

        # Refresh pass: resident keys keep their slot, take the last value.
        _, slots = self._probe_find(un, ut)
        present = slots >= 0
        if present.any():
            self._values[slots[present]] = values[last[present]].astype(np.float32)
            if self.policy == "reuse":
                self._touch(slots[present])

        # Allocation pass: absent keys, in first-occurrence order.
        new = np.flatnonzero(~present)
        m = len(new)
        if m == 0:
            _poke("cache.corrupt", cache=self)
            if self._timer:
                self._timer("cache_store", time.perf_counter() - start)
            return
        new = new[np.argsort(first[new], kind="stable")]
        kn, kt = un[new], ut[new]
        kv = values[last[new]].astype(np.float32)
        cap = self.capacity
        if m >= cap:
            # The batch replaces the whole ring: only the last `cap`
            # allocations survive (matching sequential FIFO wraparound).
            self._evicted(np.arange(self._nslots, dtype=np.int64))
            survivors = slice(m - cap, m)
            order = (self._cursor + np.arange(m - cap, m)) % cap
            self._slot_nodes[order] = kn[survivors]
            self._slot_times[order] = kt[survivors]
            self._values[order] = kv[survivors]
            self._nslots = cap
            self._cursor = (self._cursor + m) % cap
            self._rebuild_table()
            if self.policy == "reuse":
                self._tick += 1
                self._last_access[:] = self._tick
                self._gap[:] = float(cap)
        elif self.policy == "reuse":
            if self._used + self._tombs + m > (self._nbuckets * 3) // 5:
                self._rebuild_table()
            # Fill any never-used slots first; the remainder displaces the
            # resident entries whose predicted next reference is farthest
            # in the future (ties break toward the lower slot index).
            fresh = min(m, cap - self._nslots)
            fresh_slots = np.arange(self._nslots, self._nslots + fresh, dtype=np.int64)
            short = m - fresh
            if short:
                pred = (self._last_access[: self._nslots]
                        + self._gap[: self._nslots])
                victim_order = np.lexsort(
                    (np.arange(self._nslots, dtype=np.int64), -pred)
                )
                victims = victim_order[:short]
                self._evicted(victims)
                self._table_delete(self._slot_nodes[victims], self._slot_times[victims])
                slots_new = np.concatenate([fresh_slots, victims])
            else:
                slots_new = fresh_slots
            self._slot_nodes[slots_new] = kn
            self._slot_times[slots_new] = kt
            self._values[slots_new] = kv
            self._nslots += fresh
            self._cursor = self._nslots % cap
            self._table_insert(kn, kt, slots_new)
            self._tick += 1
            self._last_access[slots_new] = self._tick
            self._gap[slots_new] = float(cap)
        else:
            if self._used + self._tombs + m > (self._nbuckets * 3) // 5:
                self._rebuild_table()
            slots_new = (self._cursor + np.arange(m, dtype=np.int64)) % cap
            evict = slots_new[slots_new < self._nslots]
            if len(evict):
                self._evicted(evict)
                self._table_delete(self._slot_nodes[evict], self._slot_times[evict])
            self._slot_nodes[slots_new] = kn
            self._slot_times[slots_new] = kt
            self._values[slots_new] = kv
            self._nslots = cap if self._cursor + m >= cap else max(self._nslots, self._cursor + m)
            self._cursor = (self._cursor + m) % cap
            self._table_insert(kn, kt, slots_new)
        # A steady-state miss storm on a 100%-occupied ring used to let
        # tombstones pile up toward the global rebuild bound, silently
        # degrading every probe into a long tombstone walk.  Rebuild as
        # soon as dead buckets outnumber live ones, which keeps the
        # table's effective load factor <= ~0.5 at any occupancy.
        if self._tombs > max(self._used, 1):
            self._rebuild_table()
        _poke("cache.corrupt", cache=self)
        if self._timer:
            self._timer("cache_store", time.perf_counter() - start)

    def _evicted(self, slots: np.ndarray) -> None:
        """Surface displaced resident entries (count + demotion callback)."""
        if not len(slots):
            return
        self.evictions += int(len(slots))
        if self.on_evict is not None:
            self.on_evict(
                self._slot_nodes[slots].copy(),
                self._slot_times[slots].copy(),
                self._values[slots].copy(),
            )

    def clear(self) -> None:
        """Drop all entries and reset hit statistics."""
        self._values = None
        self._slot_nodes = None
        self._slot_times = None
        self._table = None
        self._nslots = 0
        self._cursor = 0
        self._used = 0
        self._tombs = 0
        self.hits = 0
        self.lookups = 0
        self.evictions = 0
        self._tick = 0
        self._last_access = None
        self._gap = None

    def reset_stats(self) -> None:
        self.hits = 0
        self.lookups = 0
        self.evictions = 0

    @property
    def nbytes(self) -> int:
        """Resident bytes held by stored rows (0 before the first store)."""
        if self._values is None or self.dim is None:
            return 0
        return int(self._nslots) * int(self.dim) * 4

    def validate(self) -> list:
        """Self-check table integrity; returns violations (empty = ok).

        Verifies the ring/hash-table agreement a corrupted store would
        break: finite stored rows, cursor and slot counts in range, every
        table bucket pointing at a live slot, and every live slot's key
        resolvable back to itself through the probe sequence.
        """
        errs = []
        if self.capacity <= 0 or self._values is None:
            return errs
        n = self._nslots
        if not 0 <= n <= self.capacity:
            errs.append(f"slot count {n} outside [0, {self.capacity}]")
            return errs
        if not 0 <= self._cursor < max(1, self.capacity):
            errs.append(f"ring cursor {self._cursor} outside [0, {self.capacity})")
        if n and not np.isfinite(self._values[:n]).all():
            errs.append("non-finite cached embedding rows")
        if self._table is not None:
            live = self._table[self._table >= 0]
            if len(live) and (live.max() >= n):
                errs.append("hash table references an unoccupied slot")
            if n:
                slots = np.arange(n, dtype=np.int64)
                _, found = self._probe_find(self._slot_nodes[:n], self._slot_times[:n])
                if not np.array_equal(found, slots):
                    errs.append("stored keys are not resolvable through the hash table")
        return errs

    # ---- internals --------------------------------------------------------------

    def _ensure(self, dim: int) -> None:
        if self._values is None:
            self.dim = dim
            self._values = np.zeros((self.capacity, dim), dtype=np.float32)
            self._slot_nodes = np.zeros(self.capacity, dtype=np.int64)
            self._slot_times = np.zeros(self.capacity, dtype=np.float64)
            self._table = np.full(self._nbuckets, _EMPTY, dtype=np.int64)
            if self.policy == "reuse":
                self._last_access = np.zeros(self.capacity, dtype=np.int64)
                self._gap = np.full(self.capacity, float(self.capacity))
        elif dim != self.dim:
            raise ValueError(f"stored rows have dim {self.dim}, got {dim}")

    def _probe_find(self, nodes: np.ndarray, times: np.ndarray):
        """Vectorized linear probing: (bucket, slot) per key, -1 on miss."""
        n = len(nodes)
        buckets = np.full(n, -1, dtype=np.int64)
        result = np.full(n, -1, dtype=np.int64)
        if self._table is None or n == 0:
            return buckets, result
        table = self._table
        idx = np.arange(n, dtype=np.int64)
        h = (_hash_keys(nodes, times.view(np.uint64)) & np.uint64(self._mask)).astype(np.int64)
        qn, qt = nodes, times
        for _ in range(self._nbuckets + 1):
            if idx.size == 0:
                return buckets, result
            b = table[h]
            occupied = b >= 0
            match = np.zeros(idx.size, dtype=bool)
            if occupied.any():
                s = b[occupied]
                match[occupied] = (self._slot_nodes[s] == qn[occupied]) & (
                    self._slot_times[s] == qt[occupied]
                )
                found = match & occupied
                result[idx[found]] = b[found]
                buckets[idx[found]] = h[found]
            resolved = match | (b == _EMPTY)
            keep = ~resolved
            idx, qn, qt = idx[keep], qn[keep], qt[keep]
            h = (h[keep] + 1) & self._mask
        raise RuntimeError("open-addressing probe did not terminate")  # pragma: no cover

    def _table_delete(self, nodes: np.ndarray, times: np.ndarray) -> None:
        buckets, slots = self._probe_find(nodes, times)
        live = slots >= 0
        self._table[buckets[live]] = _TOMBSTONE
        self._used -= int(live.sum())
        self._tombs += int(live.sum())

    def _table_insert(self, nodes: np.ndarray, times: np.ndarray, slots: np.ndarray) -> None:
        """Insert keys known to be absent; first writer wins per bucket."""
        table = self._table
        h = (_hash_keys(nodes, times.view(np.uint64)) & np.uint64(self._mask)).astype(np.int64)
        s = np.asarray(slots, dtype=np.int64)
        for _ in range(self._nbuckets + 1):
            if h.size == 0:
                return
            free = table[h] < 0
            placed = np.zeros(h.size, dtype=bool)
            if free.any():
                idx_free = np.flatnonzero(free)
                _, first_idx = np.unique(h[idx_free], return_index=True)
                win = idx_free[first_idx]
                self._tombs -= int((table[h[win]] == _TOMBSTONE).sum())
                self._used += len(win)
                table[h[win]] = s[win]
                placed[win] = True
            keep = ~placed
            h = (h[keep] + 1) & self._mask
            s = s[keep]
        raise RuntimeError("open-addressing insert did not terminate")  # pragma: no cover

    def _rebuild_table(self) -> None:
        self._table = np.full(self._nbuckets, _EMPTY, dtype=np.int64)
        self._used = 0
        self._tombs = 0
        if self._nslots:
            live = np.arange(self._nslots, dtype=np.int64)
            self._table_insert(self._slot_nodes[live], self._slot_times[live], live)


class _ReferenceNodeTimeCache:
    """Per-row dict/loop implementation of the same batch-store contract.

    This is the pre-kernel hot path (Python dict per row); it is kept
    only for the equivalence tests and the microbenchmark.
    """

    def __init__(self, capacity: int, dim: Optional[int] = None):
        self.capacity = int(capacity)
        self.dim = dim
        self.hits = 0
        self.lookups = 0
        self._slots: Optional[np.ndarray] = None
        self._index: Dict[Tuple[int, float], int] = {}
        self._keys: list = []
        self._cursor = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def num_entries(self) -> int:
        return sum(1 for k in self._keys if k is not None)

    def lookup(self, nodes: np.ndarray, times: np.ndarray):
        n = len(nodes)
        self.lookups += n
        hit_mask = np.zeros(n, dtype=bool)
        if self._slots is None or n == 0:
            return hit_mask, None
        rows = np.zeros((n, self.dim), dtype=np.float32)
        index = self._index
        for i in range(n):
            slot = index.get((int(nodes[i]), float(times[i])))
            if slot is not None:
                hit_mask[i] = True
                rows[i] = self._slots[slot]
        self.hits += int(hit_mask.sum())
        return hit_mask, rows

    def store(self, nodes: np.ndarray, times: np.ndarray, values: np.ndarray) -> None:
        if not self.enabled or len(nodes) == 0:
            return
        values = np.asarray(values)
        if self._slots is None:
            self.dim = values.shape[1]
            self._slots = np.zeros((self.capacity, self.dim), dtype=np.float32)
            self._keys = [None] * self.capacity
        index = self._index
        n = len(nodes)
        # Refresh pass: resident keys take the (last) batch value in place.
        resident = set()
        for i in range(n):
            key = (int(nodes[i]), float(times[i]))
            slot = index.get(key)
            if slot is not None:
                self._slots[slot] = values[i]
                resident.add(key)
        # Allocation pass: absent keys in first-occurrence order, with the
        # value of their last occurrence; each allocation evicts FIFO.
        last_value: Dict[Tuple[int, float], int] = {}
        alloc_order = []
        for i in range(n):
            key = (int(nodes[i]), float(times[i]))
            if key in resident:
                continue
            if key not in last_value:
                alloc_order.append(key)
            last_value[key] = i
        for key in alloc_order:
            slot = self._cursor
            old_key = self._keys[slot]
            if old_key is not None and index.get(old_key) == slot:
                del index[old_key]
            index[key] = slot
            self._keys[slot] = key
            self._slots[slot] = values[last_value[key]]
            self._cursor = (self._cursor + 1) % self.capacity

    def clear(self) -> None:
        self._index.clear()
        self._keys = [None] * self.capacity if self._slots is not None else []
        self._slots = None
        self._cursor = 0
        self.hits = 0
        self.lookups = 0
