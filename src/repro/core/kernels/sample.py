"""Batched temporal-neighbor sampling kernels.

Arrays-in / arrays-out: every kernel takes the raw temporal-CSR arrays
(``indptr``, ``indices``, ``eids``, ``etimes`` — per-node neighbor lists
sorted by ascending edge time) plus the query ``(nodes, times)`` pairs,
and returns a :class:`SampleResult` of flat row arrays.  Destinations
with no earlier edges contribute zero rows.

Strategies (matching the paper):

* ``recent`` — the ``k`` most recent edges strictly before the query
  time, emitted in ascending time order.
* ``uniform`` — a uniform subset of the temporal history.  The kernel
  draws one random key per candidate edge, quantized to
  ``_KEY_BITS`` bits, and keeps the ``k`` smallest keys per destination
  (a vectorized reservoir), emitting the selection in ascending position
  order.  Because :meth:`numpy.random.Generator.random` produces the
  same stream whether drawn in one call or per-row chunks, the loop
  reference consumes the generator identically; quantized-key ties are
  broken by original position in both (stable sorts), so the two
  implementations are bit-identical under a fixed seed.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

import numpy as np

from ...resilience.hooks import poke as _poke

__all__ = [
    "SampleResult",
    "segment_searchsorted",
    "sample_recent",
    "sample_uniform",
    "temporal_sample",
    "_reference_sample_arrays",
]

#: random selection keys are quantized to this many bits so that
#: ``(row << _KEY_BITS) | key`` fits an int64 single-pass stable sort.
_KEY_BITS = 22


def _quantized_keys(rng: np.random.Generator, n: int) -> np.ndarray:
    """Draw *n* selection keys as ints in ``[0, 2**_KEY_BITS)``."""
    return (rng.random(n) * (1 << _KEY_BITS)).astype(np.int64)


class SampleResult(NamedTuple):
    """Flat sampled-neighbor rows shared by every sampler front-end.

    Behaves as the historical ``(srcnodes, eids, etimes, dstindex)``
    4-tuple (it unpacks positionally) while giving the fields names.
    """

    #: neighbor node id per sampled edge row (int64).
    srcnodes: np.ndarray
    #: edge id per row, indexing the graph's edge features (int64).
    eids: np.ndarray
    #: edge timestamp per row (float64).
    etimes: np.ndarray
    #: destination row each source row belongs to (int64, non-decreasing).
    dstindex: np.ndarray

    @property
    def num_rows(self) -> int:
        return len(self.srcnodes)


def _empty_result(n_rows: int = 0) -> SampleResult:
    return SampleResult(
        np.empty(n_rows, dtype=np.int64),
        np.empty(n_rows, dtype=np.int64),
        np.empty(n_rows, dtype=np.float64),
        np.empty(n_rows, dtype=np.int64),
    )


def segment_searchsorted(
    values: np.ndarray, lo: np.ndarray, hi: np.ndarray, queries: np.ndarray
) -> np.ndarray:
    """Batched ``searchsorted(values[lo[i]:hi[i]], queries[i], side='left')``.

    ``values`` must be sorted ascending within each ``[lo[i], hi[i])``
    segment.  Returns absolute cut positions (``lo[i] + insertion point``)
    via a vectorized binary search: O(log max-segment) passes, each a few
    full-width numpy ops instead of one Python-level bisect per query.
    """
    lo = np.asarray(lo, dtype=np.int64).copy()
    hi = np.asarray(hi, dtype=np.int64).copy()
    active = lo < hi
    while active.any():
        mid = (lo + hi) >> 1
        go_right = np.zeros(len(lo), dtype=bool)
        idx = np.flatnonzero(active)
        go_right[idx] = values[mid[idx]] < queries[idx]
        lo = np.where(go_right, mid + 1, lo)
        hi = np.where(active & ~go_right, mid, hi)
        active = lo < hi
    return lo


def _segment_layout(counts: np.ndarray):
    """Flat-gather helpers for variable-length per-destination segments.

    Returns ``(total, dstindex, within)`` where ``dstindex`` repeats each
    destination row id ``counts[i]`` times and ``within`` enumerates
    ``0..counts[i]-1`` inside each segment.
    """
    total = int(counts.sum())
    dstindex = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    starts = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - starts[dstindex]
    return total, dstindex, within


def sample_recent(
    indptr: np.ndarray,
    indices: np.ndarray,
    eids: np.ndarray,
    etimes: np.ndarray,
    nodes: np.ndarray,
    times: np.ndarray,
    k: int,
) -> SampleResult:
    """Most-recent-``k`` temporal sampling, fully vectorized."""
    nodes = np.asarray(nodes, dtype=np.int64)
    if len(nodes) == 0:
        return _empty_result()
    los = indptr[nodes]
    cuts = segment_searchsorted(etimes, los, indptr[nodes + 1], times)
    counts = np.minimum(cuts - los, k)
    total, dstindex, within = _segment_layout(counts)
    sel = (cuts - counts)[dstindex] + within
    return SampleResult(indices[sel], eids[sel], etimes[sel], dstindex)


def sample_uniform(
    indptr: np.ndarray,
    indices: np.ndarray,
    eids: np.ndarray,
    etimes: np.ndarray,
    nodes: np.ndarray,
    times: np.ndarray,
    k: int,
    rng: np.random.Generator,
) -> SampleResult:
    """Uniform-without-replacement temporal sampling, fully vectorized.

    One random key is drawn per candidate edge (per destination, all
    edges strictly before its time); the ``k`` smallest keys per
    destination are kept, emitted in ascending position order.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    if len(nodes) == 0:
        return _empty_result()
    los = indptr[nodes]
    cuts = segment_searchsorted(etimes, los, indptr[nodes + 1], times)
    avail = cuts - los
    counts = np.minimum(avail, k)
    cand_total, cand_row, cand_within = _segment_layout(avail)
    keys = _quantized_keys(rng, cand_total)
    # One stable int64 sort of (row, key) packed into a single word:
    # each row's candidates stay contiguous, ordered by ascending key, so
    # the first counts[row] entries of a segment are its smallest keys.
    order = np.argsort((cand_row << _KEY_BITS) | keys, kind="stable")
    # Scatter each candidate's key-rank back to its original position;
    # selecting by rank < counts keeps ascending position order for free.
    ranks = np.empty(cand_total, dtype=np.int64)
    ranks[order] = cand_within
    selected = ranks < counts[cand_row]
    dstindex = cand_row[selected]
    sel = los[dstindex] + cand_within[selected]
    return SampleResult(indices[sel], eids[sel], etimes[sel], dstindex)


def temporal_sample(
    indptr: np.ndarray,
    indices: np.ndarray,
    eids: np.ndarray,
    etimes: np.ndarray,
    nodes: np.ndarray,
    times: np.ndarray,
    k: int,
    strategy: str = "recent",
    rng: Optional[np.random.Generator] = None,
) -> SampleResult:
    """Dispatch to :func:`sample_recent` / :func:`sample_uniform`."""
    _poke("kernel.sample")  # fault-injection site (no-op unless armed)
    if strategy == "recent":
        return sample_recent(indptr, indices, eids, etimes, nodes, times, k)
    if strategy == "uniform":
        if rng is None:
            raise ValueError("uniform sampling requires an rng")
        return sample_uniform(indptr, indices, eids, etimes, nodes, times, k, rng)
    raise ValueError(f"unknown strategy: {strategy!r}")


def _reference_sample_arrays(
    indptr: np.ndarray,
    indices: np.ndarray,
    eids: np.ndarray,
    etimes: np.ndarray,
    nodes: np.ndarray,
    times: np.ndarray,
    k: int,
    strategy: str = "recent",
    rng: Optional[np.random.Generator] = None,
) -> SampleResult:
    """Per-destination loop sampler (pre-kernel implementation).

    Kept only for the equivalence tests and the microbenchmark.  The
    uniform branch draws per-row key chunks from the same generator
    stream the vectorized kernel consumes in one call, so both produce
    bit-identical selections under a fixed seed.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    n = len(nodes)
    counts = np.empty(n, dtype=np.int64)
    cuts = np.empty(n, dtype=np.int64)
    los = indptr[nodes]
    his = indptr[nodes + 1]
    for i in range(n):
        lo, hi = los[i], his[i]
        cut = lo + np.searchsorted(etimes[lo:hi], times[i], side="left")
        cuts[i] = cut
        counts[i] = min(cut - lo, k)
    total = int(counts.sum())
    out_nbr = np.empty(total, dtype=np.int64)
    out_eid = np.empty(total, dtype=np.int64)
    out_ets = np.empty(total, dtype=np.float64)
    out_idx = np.empty(total, dtype=np.int64)
    pos = 0
    if strategy == "recent":
        for i in range(n):
            c = counts[i]
            if c == 0:
                continue
            cut = cuts[i]
            sel = slice(cut - c, cut)
            out_nbr[pos : pos + c] = indices[sel]
            out_eid[pos : pos + c] = eids[sel]
            out_ets[pos : pos + c] = etimes[sel]
            out_idx[pos : pos + c] = i
            pos += c
    elif strategy == "uniform":
        if rng is None:
            raise ValueError("uniform sampling requires an rng")
        for i in range(n):
            lo, cut = los[i], cuts[i]
            avail = cut - lo
            if avail == 0:
                continue
            keys = _quantized_keys(rng, avail)
            c = counts[i]
            pick = np.sort(np.argsort(keys, kind="stable")[:c])
            chosen = lo + pick
            out_nbr[pos : pos + c] = indices[chosen]
            out_eid[pos : pos + c] = eids[chosen]
            out_ets[pos : pos + c] = etimes[chosen]
            out_idx[pos : pos + c] = i
            pos += c
    else:
        raise ValueError(f"unknown strategy: {strategy!r}")
    return SampleResult(out_nbr, out_eid, out_ets, out_idx)
