"""Vectorized unique-(node, time) computation for ``op.dedup()``.

The structured-dtype ``np.unique`` of the original implementation pays
for void-dtype comparisons; the kernel gets the same answer from one
``lexsort`` plus boundary detection over plain int64/float64 arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = ["unique_node_times", "_reference_unique_node_times"]


def unique_node_times(nodes: np.ndarray, times: np.ndarray):
    """Unique (node, time) pairs and the inverse map onto the input order.

    Returns ``(uniq_nodes, uniq_times, inverse)`` where
    ``uniq_nodes[inverse] == nodes`` and likewise for times; unique pairs
    are sorted ascending by (node, time), matching ``np.unique`` on a
    structured ``(n, t)`` array.
    """
    n = len(nodes)
    if n == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.int64),
        )
    nodes = np.asarray(nodes, dtype=np.int64)
    times = np.asarray(times, dtype=np.float64)
    order = np.lexsort((times, nodes))
    sn, st = nodes[order], times[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = (sn[1:] != sn[:-1]) | (st[1:] != st[:-1])
    group = np.cumsum(boundary) - 1
    inverse = np.empty(n, dtype=np.int64)
    inverse[order] = group
    return sn[boundary], st[boundary], inverse


def _reference_unique_node_times(nodes: np.ndarray, times: np.ndarray):
    """Structured-dtype ``np.unique`` implementation (pre-kernel path).

    Kept only for the equivalence tests and the microbenchmark.
    """
    pairs = np.empty(len(nodes), dtype=[("n", np.int64), ("t", np.float64)])
    pairs["n"] = nodes
    pairs["t"] = times
    uniq, inverse = np.unique(pairs, return_inverse=True)
    return uniq["n"].copy(), uniq["t"].copy(), inverse.astype(np.int64)
