"""Vectorized unique-(node, time) computation for ``op.dedup()``.

The structured-dtype ``np.unique`` of the original implementation pays
for void-dtype comparisons; the kernel gets the same answer from one
``lexsort`` plus boundary detection over plain int64/float64 arrays.

Also home to :func:`last_event_wins`, the duplicate-node coalescing rule
shared by ``Memory.update`` and ``Mailbox.store``: when one batch carries
several entries for the same node, the entry with the greatest timestamp
wins, with timestamp ties broken by a content fingerprint of the value
row so the outcome is deterministic regardless of input order.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "unique_node_times",
    "last_event_wins",
    "canonical_event_order",
    "_reference_unique_node_times",
]


def unique_node_times(nodes: np.ndarray, times: np.ndarray):
    """Unique (node, time) pairs and the inverse map onto the input order.

    Returns ``(uniq_nodes, uniq_times, inverse)`` where
    ``uniq_nodes[inverse] == nodes`` and likewise for times; unique pairs
    are sorted ascending by (node, time), matching ``np.unique`` on a
    structured ``(n, t)`` array.
    """
    n = len(nodes)
    if n == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.int64),
        )
    nodes = np.asarray(nodes, dtype=np.int64)
    times = np.asarray(times, dtype=np.float64)
    order = np.lexsort((times, nodes))
    sn, st = nodes[order], times[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = (sn[1:] != sn[:-1]) | (st[1:] != st[:-1])
    group = np.cumsum(boundary) - 1
    inverse = np.empty(n, dtype=np.int64)
    inverse[order] = group
    return sn[boundary], st[boundary], inverse


def _row_fingerprint(values: np.ndarray) -> np.ndarray:
    """Order-independent 64-bit content fingerprint of each row's bytes.

    Two bit-identical rows always fingerprint identically, so using the
    fingerprint as a tie-break makes duplicate coalescing independent of
    input order (rows that collide on both timestamp and fingerprint are
    interchangeable for storage purposes).
    """
    v = np.ascontiguousarray(values)
    raw = v.view(np.uint8).reshape(len(v), -1)
    h = np.full(len(v), 0x9E3779B97F4A7C15, dtype=np.uint64)
    for col in raw.T:
        h ^= col.astype(np.uint64)
        h *= np.uint64(0xBF58476D1CE4E5B9)
        h ^= h >> np.uint64(29)
    return h


def canonical_event_order(nodes: np.ndarray, times: np.ndarray,
                          values=None) -> np.ndarray:
    """Indices sorting entries by (node, time, value fingerprint).

    The canonical per-node delivery order: ascending timestamps, with
    equal-timestamp entries ordered by their content fingerprint.  Any
    permutation of the same entries sorts to the same sequence, which is
    what makes multi-slot mailbox delivery replay-deterministic.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    times = np.asarray(times, dtype=np.float64)
    if values is not None and len(nodes):
        fp = _row_fingerprint(np.asarray(values))
    else:
        fp = np.zeros(len(nodes), dtype=np.uint64)
    return np.lexsort((fp, times, nodes))


def last_event_wins(nodes: np.ndarray, times: np.ndarray, values=None):
    """Select one winning entry per unique node: last event wins.

    Returns ``(uniq_nodes, winner_idx)`` where ``winner_idx[i]`` indexes
    the input entry that wins for ``uniq_nodes[i]``: the entry with the
    greatest timestamp, timestamp ties broken by the value row's content
    fingerprint.  Deterministic regardless of input order; entries equal
    on both keys carry identical bytes (up to fingerprint collision) and
    are interchangeable.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    n = len(nodes)
    if n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    order = canonical_event_order(nodes, times, values)
    sn = nodes[order]
    last = np.empty(n, dtype=bool)
    last[-1] = True
    last[:-1] = sn[1:] != sn[:-1]
    return sn[last], order[last]


def _reference_unique_node_times(nodes: np.ndarray, times: np.ndarray):
    """Structured-dtype ``np.unique`` implementation (pre-kernel path).

    Kept only for the equivalence tests and the microbenchmark.
    """
    pairs = np.empty(len(nodes), dtype=[("n", np.int64), ("t", np.float64)])
    pairs["n"] = nodes
    pairs["t"] = times
    uniq, inverse = np.unique(pairs, return_inverse=True)
    return uniq["n"].copy(), uniq["t"].copy(), inverse.astype(np.int64)
