"""Vectorized hot-path kernels shared by the TBlock operator front-ends.

The paper attributes TGLite's speedups to fast shared kernels *under* the
operator surface: a 32/64-thread C++ temporal sampler and TGOpt-style
memoization tables.  This package is the numpy analog — batched kernels
with a uniform **arrays-in / arrays-out** contract that every front-end
(:class:`repro.core.TSampler`, :class:`repro.manual.NeighborFinder`, the
TGL baseline sampler, ``op.dedup``, ``op.cache``) dispatches through:

* :mod:`~repro.core.kernels.sample` — fully vectorized temporal-neighbor
  sampling (batched per-segment binary search over the temporal CSR, flat
  segment-offset gathers, and a random-key selection scheme for uniform
  sampling that stays deterministic under a fixed seed).
* :mod:`~repro.core.kernels.cache` — an array-based (node, time) -> slot
  store using vectorized open-addressing probes, backing ``op.cache()``
  and the manual baseline's memo table.
* :mod:`~repro.core.kernels.dedup` — vectorized unique-(node, time)
  computation for ``op.dedup()``.

Each kernel keeps its original per-row loop implementation as a
``_reference_*`` sibling; those references are exercised only by the
equivalence tests (``tests/test_kernels.py``) and the microbenchmark
(``benchmarks/test_kernels_microbench.py``), which assert that the
vectorized kernels are bit-identical and measure their speedup.
"""

from .cache import NodeTimeCache, _ReferenceNodeTimeCache
from .dedup import (
    _reference_unique_node_times,
    canonical_event_order,
    last_event_wins,
    unique_node_times,
)
from .sample import (
    SampleResult,
    _reference_sample_arrays,
    sample_recent,
    sample_uniform,
    segment_searchsorted,
    temporal_sample,
)

__all__ = [
    "SampleResult",
    "temporal_sample",
    "sample_recent",
    "sample_uniform",
    "segment_searchsorted",
    "unique_node_times",
    "last_event_wins",
    "canonical_event_order",
    "NodeTimeCache",
    "_reference_sample_arrays",
    "_reference_unique_node_times",
    "_ReferenceNodeTimeCache",
]
