"""Node memory storage for memory-based TGNN models (TGN/JODIE/APAN).

``Memory`` holds one vector per node plus the timestamp of its last update
(Eq. 11 in the paper: ``s_i(t)``).  It is deliberately a plain storage
component — the *update function* (GRU/RNN) lives in the models — but it
centralizes device placement so TGLite can preload/cache it like any other
graph data.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..tensor import Tensor
from ..tensor.device import Device, get_device
from .kernels.dedup import last_event_wins

__all__ = ["Memory"]


class Memory:
    """Per-node memory vectors and last-updated timestamps.

    Args:
        num_nodes: number of nodes.
        dim: memory vector width.
        device: where the backing storage lives ('cpu' keeps it host-side
            for the CPU-to-GPU experiments).
    """

    def __init__(self, num_nodes: int, dim: int, device: Union[str, Device, None] = None):
        self.num_nodes = num_nodes
        self.dim = dim
        self.device = get_device(device)
        self.data = Tensor(np.zeros((num_nodes, dim), dtype=np.float32), device=self.device)
        self.time = np.zeros(num_nodes, dtype=np.float64)
        self._backup: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def get(self, nodes: np.ndarray) -> Tensor:
        """Memory rows for *nodes* (detached: gradients never flow into storage)."""
        return Tensor(self.data.data[nodes], device=self.device)

    def get_time(self, nodes: np.ndarray) -> np.ndarray:
        return self.time[nodes]

    def update(self, nodes: np.ndarray, values: Tensor, times: np.ndarray) -> None:
        """Overwrite memory rows and last-update times for *nodes*.

        Values are detached before storage: the training scheme gets
        gradients via the *current* batch's loss, never by backpropagating
        through persistent state (which would leak across batches).
        Cross-device writes pay the simulated transfer cost.

        **Duplicate-node guarantee** — *nodes* may repeat within one call;
        each node's stored row is the duplicate with the greatest update
        time (last event wins), with timestamp ties broken by a content
        fingerprint of the value row.  The outcome is deterministic
        regardless of the input order of the duplicates, so replaying a
        permuted event batch commits bit-identical memory.
        """
        if isinstance(values, Tensor) and values.device is not self.device:
            values = values.to(self.device)
        values_data = values.data if isinstance(values, Tensor) else np.asarray(values)
        nodes = np.asarray(nodes, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        if len(nodes) and len(np.unique(nodes)) != len(nodes):
            uniq, winners = last_event_wins(nodes, times, values_data)
            nodes, values_data, times = uniq, values_data[winners], times[winners]
        self.data.data[nodes] = values_data
        self.time[nodes] = times

    def reset(self) -> None:
        """Zero all memory (start of training, or replay from scratch)."""
        self.data.data[...] = 0.0
        self.time[...] = 0.0

    def backup(self) -> None:
        """Snapshot current state (e.g. end of training, before inference)."""
        self._backup = (self.data.data.copy(), self.time.copy())

    def restore(self) -> None:
        """Restore the last snapshot taken by :meth:`backup`."""
        if self._backup is None:
            raise RuntimeError("no memory backup to restore")
        self.data.data[...] = self._backup[0]
        self.time[...] = self._backup[1]

    def validate(self, max_time: Optional[float] = None) -> list:
        """Self-check invariants; returns violations (empty = healthy).

        Checked: finite memory vectors, finite non-negative last-update
        times, shapes matching the node count, and (when *max_time* is
        given) no update time beyond the stream horizon — update times
        are monotone per node under the streaming protocol, so the
        horizon bound is the checkable residue of that invariant.
        """
        errs = []
        if self.data.data.shape != (self.num_nodes, self.dim):
            errs.append(
                f"data shape {self.data.data.shape} != ({self.num_nodes}, {self.dim})"
            )
        if not np.isfinite(self.data.data).all():
            errs.append("non-finite entries in node memory vectors")
        if self.time.shape != (self.num_nodes,):
            errs.append(f"time shape {self.time.shape} != ({self.num_nodes},)")
        if not np.isfinite(self.time).all():
            errs.append("non-finite last-update times")
        elif len(self.time):
            if self.time.min() < 0:
                errs.append("negative last-update time")
            if max_time is not None and max_time > 0 and self.time.max() > max_time:
                errs.append(
                    f"last-update time {self.time.max():g} beyond stream "
                    f"horizon {max_time:g}"
                )
        return errs

    def to(self, device: Union[str, Device]) -> "Memory":
        """Move backing storage to *device* (pays simulated transfer cost)."""
        target = get_device(device)
        if target is not self.device:
            self.data = self.data.to(target)
            self.device = target
        return self

    def state_digest(self) -> str:
        """Canonical sha256 of the full state (vectors + update times).

        Two memories digest equal iff they are bit-identical — the
        equivalence currency used by replica scrubbing and the cluster
        equivalence tests.
        """
        from ..integrity.digest import array_digest

        return array_digest(self.data.data, self.time)

    def nbytes(self) -> int:
        return self.data.data.nbytes + self.time.nbytes

    def __repr__(self) -> str:
        return f"Memory(nodes={self.num_nodes}, dim={self.dim}, device='{self.device}')"
