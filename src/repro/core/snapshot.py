"""Discrete-time (DTDG) snapshot abstraction — the paper's future work (§7).

The paper targets CTDGs but names discrete-time support as the natural
extension, "in accordance with TGLite's design approach of providing core
data abstractions and composable operators ... perhaps as composable
operators on a graph snapshot abstraction."  This module implements that
direction:

* :class:`TSnapshot` — a static view of the temporal graph at the end of a
  time window, exposing the same block-operator surface (a snapshot can
  seed a :class:`~repro.core.block.TBlock`, so every existing operator —
  sampling, dedup, edge_reduce, aggregate — composes with it unchanged);
* :func:`snapshots` — chop a :class:`~repro.core.graph.TGraph` into evenly
  spaced (or custom-boundary) snapshot windows, as Figure 1(b) depicts;
* :class:`SnapshotLoader` — iterate (snapshot, next-window edges) pairs,
  the training protocol of discrete-time models (learn on history up to
  step k, predict the edges of step k+1).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .batch import TBatch
from .block import TBlock

__all__ = ["TSnapshot", "snapshots", "SnapshotLoader"]


class TSnapshot:
    """A static view of the temporal graph over the window ``[t_start, t_end)``.

    The snapshot does not copy edges; it records the contiguous edge-index
    range (edges are time-sorted in TGraph) and the window boundaries.
    """

    def __init__(self, g, index: int, start_eid: int, stop_eid: int,
                 t_start: float, t_end: float):
        self.g = g
        self.index = index
        self.start_eid = int(start_eid)
        self.stop_eid = int(stop_eid)
        self.t_start = float(t_start)
        self.t_end = float(t_end)

    @property
    def num_edges(self) -> int:
        """Edges whose timestamps fall inside this window."""
        return self.stop_eid - self.start_eid

    def edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(src, dst, ts)`` of the window's edges."""
        sl = slice(self.start_eid, self.stop_eid)
        return self.g.src[sl], self.g.dst[sl], self.g.ts[sl]

    def nodes(self) -> np.ndarray:
        """Unique nodes active inside this window."""
        src, dst, _ = self.edges()
        return np.unique(np.concatenate([src, dst]))

    def batch(self) -> TBatch:
        """The window's edges as a TBatch (for the standard trainer)."""
        return TBatch(self.g, self.start_eid, self.stop_eid)

    def block(self, ctx, nodes: Optional[np.ndarray] = None) -> TBlock:
        """Seed a TBlock at this snapshot's end time.

        Every destination pair gets the same query time ``t_end``, so
        temporal sampling against the CTDG sees exactly the history
        available at the end of the window — this is the bridge that lets
        all existing CTDG operators run on discrete-time models.
        """
        if nodes is None:
            nodes = self.nodes()
        times = np.full(len(nodes), self.t_end, dtype=np.float64)
        return TBlock(ctx, 0, np.asarray(nodes, dtype=np.int64), times)

    def adjacency(self) -> Tuple[np.ndarray, np.ndarray]:
        """Undirected COO pairs of this window (for dense static layers)."""
        src, dst, _ = self.edges()
        return np.concatenate([src, dst]), np.concatenate([dst, src])

    def __repr__(self) -> str:
        return (
            f"TSnapshot(#{self.index}, edges={self.num_edges}, "
            f"window=[{self.t_start:.3g}, {self.t_end:.3g}))"
        )


def snapshots(
    g,
    num_snapshots: Optional[int] = None,
    boundaries: Optional[Sequence[float]] = None,
) -> List[TSnapshot]:
    """Partition *g* into consecutive snapshot windows.

    Args:
        g: the temporal graph.
        num_snapshots: evenly split ``[0, max_time]`` into this many
            windows (mutually exclusive with *boundaries*).
        boundaries: explicit ascending window end-times; the last boundary
            must cover ``g.max_time``.
    """
    if (num_snapshots is None) == (boundaries is None):
        raise ValueError("pass exactly one of num_snapshots / boundaries")
    if boundaries is None:
        if num_snapshots <= 0:
            raise ValueError("num_snapshots must be positive")
        edges = np.linspace(0.0, g.max_time, num_snapshots + 1)[1:]
        # Make sure the final window includes the last edge despite float
        # rounding in linspace.
        edges[-1] = np.nextafter(g.max_time, np.inf)
        boundaries = edges
    else:
        boundaries = np.asarray(boundaries, dtype=np.float64)
        if np.any(np.diff(boundaries) <= 0):
            raise ValueError("boundaries must be strictly ascending")
        if len(g.ts) and boundaries[-1] <= g.max_time:
            raise ValueError("last boundary must exceed max edge time")

    result: List[TSnapshot] = []
    prev_t = 0.0
    prev_eid = 0
    for i, t_end in enumerate(boundaries):
        stop_eid = int(np.searchsorted(g.ts, t_end, side="left"))
        result.append(TSnapshot(g, i, prev_eid, stop_eid, prev_t, float(t_end)))
        prev_eid = stop_eid
        prev_t = float(t_end)
    return result


class SnapshotLoader:
    """Iterate (history snapshot, next-window target batch) pairs.

    The standard discrete-time training protocol: at step ``k`` the model
    reads everything up to the end of snapshot ``k`` and predicts the edges
    of snapshot ``k+1``.
    """

    def __init__(self, g, num_snapshots: int):
        self._snaps = snapshots(g, num_snapshots=num_snapshots)

    def __len__(self) -> int:
        return max(0, len(self._snaps) - 1)

    @property
    def snapshots(self) -> List[TSnapshot]:
        return self._snaps

    def __iter__(self) -> Iterator[Tuple[TSnapshot, TBatch]]:
        for history, target in zip(self._snaps[:-1], self._snaps[1:]):
            yield history, target.batch()
