"""Mailbox storage: raw messages delivered to nodes for later batches.

Memory-based TGNN training must avoid *information leakage* — a batch's
edges may not influence the predictions made for that same batch.  The
standard scheme (adopted from TGN and TGL) stores each batch's raw messages
in a mailbox at the end of the forward pass and consumes them at the *next*
memory update.  ``Mailbox`` supports a single slot (TGN/JODIE: latest
message wins) or a ring of ``slots`` messages per node (APAN: mailbox of
size 10, aggregated by the model).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..tensor import Tensor
from ..tensor.device import Device, get_device

__all__ = ["Mailbox"]


class Mailbox:
    """Per-node message slots and delivery timestamps.

    Args:
        num_nodes: number of nodes.
        dim: message vector width.
        slots: messages retained per node; 1 keeps only the latest.
        device: backing storage placement.
    """

    def __init__(
        self,
        num_nodes: int,
        dim: int,
        slots: int = 1,
        device: Union[str, Device, None] = None,
    ):
        if slots < 1:
            raise ValueError("mailbox needs at least one slot")
        self.num_nodes = num_nodes
        self.dim = dim
        self.slots = slots
        self.device = get_device(device)
        shape = (num_nodes, dim) if slots == 1 else (num_nodes, slots, dim)
        self.mail = Tensor(np.zeros(shape, dtype=np.float32), device=self.device)
        tshape = (num_nodes,) if slots == 1 else (num_nodes, slots)
        self.time = np.zeros(tshape, dtype=np.float64)
        # Ring-buffer write cursor per node (multi-slot only).
        self._next_slot = np.zeros(num_nodes, dtype=np.int64) if slots > 1 else None

    def get(self, nodes: np.ndarray) -> Tensor:
        """Mail rows for *nodes*: ``(n, dim)`` or ``(n, slots, dim)``. Detached."""
        return Tensor(self.mail.data[nodes], device=self.device)

    def get_time(self, nodes: np.ndarray) -> np.ndarray:
        return self.time[nodes]

    def store(self, nodes: np.ndarray, mail: Tensor, times: np.ndarray) -> None:
        """Deliver one message per node in *nodes*.

        With one slot the message replaces the previous one; with multiple
        slots it is written at the node's ring-buffer cursor.  *nodes* must
        be unique within a call (use ``op.coalesce`` or ``op.src_scatter``
        to reduce duplicates first).  Cross-device writes pay the simulated
        transfer cost.
        """
        if isinstance(mail, Tensor) and mail.device is not self.device:
            mail = mail.to(self.device)
        mail_data = mail.data if isinstance(mail, Tensor) else np.asarray(mail)
        nodes = np.asarray(nodes, dtype=np.int64)
        if len(nodes) != len(np.unique(nodes)):
            raise ValueError("mailbox store requires unique node ids per call")
        if self.slots == 1:
            self.mail.data[nodes] = mail_data
            self.time[nodes] = times
        else:
            cursors = self._next_slot[nodes]
            self.mail.data[nodes, cursors] = mail_data
            self.time[nodes, cursors] = times
            self._next_slot[nodes] = (cursors + 1) % self.slots

    def reset(self) -> None:
        self.mail.data[...] = 0.0
        self.time[...] = 0.0
        if self._next_slot is not None:
            self._next_slot[...] = 0

    def validate(self) -> list:
        """Self-check invariants; returns violations (empty = healthy).

        Checked: finite stored messages and delivery times, and every
        ring-buffer write cursor inside ``[0, slots)``.
        """
        errs = []
        if not np.isfinite(self.mail.data).all():
            errs.append("non-finite entries in stored messages")
        if not np.isfinite(self.time).all():
            errs.append("non-finite delivery times")
        if self._next_slot is not None:
            if self._next_slot.shape != (self.num_nodes,):
                errs.append(
                    f"cursor shape {self._next_slot.shape} != ({self.num_nodes},)"
                )
            elif len(self._next_slot) and (
                self._next_slot.min() < 0 or self._next_slot.max() >= self.slots
            ):
                errs.append(
                    f"ring cursor out of range [0, {self.slots}) "
                    f"(min {self._next_slot.min()}, max {self._next_slot.max()})"
                )
        return errs

    def to(self, device: Union[str, Device]) -> "Mailbox":
        target = get_device(device)
        if target is not self.device:
            self.mail = self.mail.to(target)
            self.device = target
        return self

    def nbytes(self) -> int:
        return self.mail.data.nbytes + self.time.nbytes

    def __repr__(self) -> str:
        return (
            f"Mailbox(nodes={self.num_nodes}, dim={self.dim}, "
            f"slots={self.slots}, device='{self.device}')"
        )
