"""Mailbox storage: raw messages delivered to nodes for later batches.

Memory-based TGNN training must avoid *information leakage* — a batch's
edges may not influence the predictions made for that same batch.  The
standard scheme (adopted from TGN and TGL) stores each batch's raw messages
in a mailbox at the end of the forward pass and consumes them at the *next*
memory update.  ``Mailbox`` supports a single slot (TGN/JODIE: latest
message wins) or a ring of ``slots`` messages per node (APAN: mailbox of
size 10, aggregated by the model).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..tensor import Tensor
from ..tensor.device import Device, get_device
from .kernels.dedup import canonical_event_order, last_event_wins

__all__ = ["Mailbox"]


class Mailbox:
    """Per-node message slots and delivery timestamps.

    Args:
        num_nodes: number of nodes.
        dim: message vector width.
        slots: messages retained per node; 1 keeps only the latest.
        device: backing storage placement.
    """

    def __init__(
        self,
        num_nodes: int,
        dim: int,
        slots: int = 1,
        device: Union[str, Device, None] = None,
    ):
        if slots < 1:
            raise ValueError("mailbox needs at least one slot")
        self.num_nodes = num_nodes
        self.dim = dim
        self.slots = slots
        self.device = get_device(device)
        shape = (num_nodes, dim) if slots == 1 else (num_nodes, slots, dim)
        self.mail = Tensor(np.zeros(shape, dtype=np.float32), device=self.device)
        tshape = (num_nodes,) if slots == 1 else (num_nodes, slots)
        self.time = np.zeros(tshape, dtype=np.float64)
        # Ring-buffer write cursor per node (multi-slot only).
        self._next_slot = np.zeros(num_nodes, dtype=np.int64) if slots > 1 else None
        self._backup: Optional[Tuple] = None

    def get(self, nodes: np.ndarray) -> Tensor:
        """Mail rows for *nodes*: ``(n, dim)`` or ``(n, slots, dim)``. Detached."""
        return Tensor(self.mail.data[nodes], device=self.device)

    def get_time(self, nodes: np.ndarray) -> np.ndarray:
        return self.time[nodes]

    def store(self, nodes: np.ndarray, mail: Tensor, times: np.ndarray) -> None:
        """Deliver messages to *nodes*.

        With one slot the message replaces the previous one; with multiple
        slots it is written at the node's ring-buffer cursor.  Cross-device
        writes pay the simulated transfer cost.

        **Duplicate-node guarantee** — *nodes* may repeat within one call
        (``op.coalesce``/``op.src_scatter`` still reduce duplicates on the
        training path, but the streaming ingestion path delivers raw event
        batches).  With one slot, each node keeps the duplicate with the
        greatest delivery time (last event wins; timestamp ties broken by
        a content fingerprint of the message row).  With multiple slots,
        a node's duplicates are written to consecutive ring slots in
        canonical ascending (time, fingerprint) order.  Either way the
        stored state is deterministic regardless of the input order of
        the duplicates.
        """
        if isinstance(mail, Tensor) and mail.device is not self.device:
            mail = mail.to(self.device)
        mail_data = mail.data if isinstance(mail, Tensor) else np.asarray(mail)
        nodes = np.asarray(nodes, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        unique = len(nodes) == len(np.unique(nodes))
        if self.slots == 1:
            if not unique:
                uniq, winners = last_event_wins(nodes, times, mail_data)
                nodes, mail_data, times = uniq, mail_data[winners], times[winners]
            self.mail.data[nodes] = mail_data
            self.time[nodes] = times
        else:
            if not unique:
                order = canonical_event_order(nodes, times, mail_data)
                nodes, mail_data, times = nodes[order], mail_data[order], times[order]
                # Per-node rank among duplicates: consecutive ring slots.
                starts = np.flatnonzero(
                    np.concatenate(([True], nodes[1:] != nodes[:-1]))
                )
                rank = np.arange(len(nodes), dtype=np.int64)
                rank -= np.repeat(starts, np.diff(np.append(starts, len(nodes))))
            else:
                rank = np.zeros(len(nodes), dtype=np.int64)
            cursors = (self._next_slot[nodes] + rank) % self.slots
            self.mail.data[nodes, cursors] = mail_data
            self.time[nodes, cursors] = times
            self._next_slot[nodes] = (cursors + 1) % self.slots

    def reset(self) -> None:
        self.mail.data[...] = 0.0
        self.time[...] = 0.0
        if self._next_slot is not None:
            self._next_slot[...] = 0

    def backup(self) -> None:
        """Snapshot current state (mirrors :meth:`Memory.backup`)."""
        self._backup = (
            self.mail.data.copy(),
            self.time.copy(),
            None if self._next_slot is None else self._next_slot.copy(),
        )

    def restore(self) -> None:
        """Restore the last snapshot taken by :meth:`backup`."""
        if self._backup is None:
            raise RuntimeError("no mailbox backup to restore")
        self.mail.data[...] = self._backup[0]
        self.time[...] = self._backup[1]
        if self._next_slot is not None:
            self._next_slot[...] = self._backup[2]

    def validate(self) -> list:
        """Self-check invariants; returns violations (empty = healthy).

        Checked: finite stored messages and delivery times, and every
        ring-buffer write cursor inside ``[0, slots)``.
        """
        errs = []
        if not np.isfinite(self.mail.data).all():
            errs.append("non-finite entries in stored messages")
        if not np.isfinite(self.time).all():
            errs.append("non-finite delivery times")
        if self._next_slot is not None:
            if self._next_slot.shape != (self.num_nodes,):
                errs.append(
                    f"cursor shape {self._next_slot.shape} != ({self.num_nodes},)"
                )
            elif len(self._next_slot) and (
                self._next_slot.min() < 0 or self._next_slot.max() >= self.slots
            ):
                errs.append(
                    f"ring cursor out of range [0, {self.slots}) "
                    f"(min {self._next_slot.min()}, max {self._next_slot.max()})"
                )
        return errs

    def to(self, device: Union[str, Device]) -> "Mailbox":
        target = get_device(device)
        if target is not self.device:
            self.mail = self.mail.to(target)
            self.device = target
        return self

    def state_digest(self) -> str:
        """Canonical sha256 of the full state (mail, times, ring cursors).

        Covers the ring-buffer write cursor too (multi-slot mailboxes):
        two mailboxes that hold the same rows but would write the *next*
        message to different slots are not equivalent states.
        """
        from ..integrity.digest import array_digest

        if self._next_slot is None:
            return array_digest(self.mail.data, self.time)
        return array_digest(self.mail.data, self.time, self._next_slot)

    def nbytes(self) -> int:
        return self.mail.data.nbytes + self.time.nbytes

    def __repr__(self) -> str:
        return (
            f"Mailbox(nodes={self.num_nodes}, dim={self.dim}, "
            f"slots={self.slots}, device='{self.device}')"
        )
