"""TContext: settings and scratch space used by the TGLite runtime.

A :class:`TContext` carries (a) placement policy — which simulated device
computation runs on and where raw feature data lives — and (b) the
:class:`~repro.store.tiered.TieredFeatureStore` behind the optimization
operators: the per-layer embedding memoization used by ``op.cache()``
(spaces ``'embed:<layer>'``), the pool of pinned staging buffers used by
``op.preload()``, and the precomputed time-vector tables used by
``op.precomputed_times()``/``op.precomputed_zeros()``.

Instrumentation is read through one surface: :meth:`TContext.stats`
returns a :class:`~repro.core.stats.ContextStats` snapshot (operator
counters, per-layer cache hit rates, pinned-pool reuse, per-kernel wall
time, and the store's per-tier bytes-moved/stall accounting) and
:meth:`TContext.reset_stats` clears it.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

import numpy as np

from ..store.api import StoreConfig
from ..store.tiered import TieredFeatureStore
from ..store.tiers import PinnedPool as _PinnedPool  # compat re-export
from ..tensor import Tensor
from ..tensor.device import CPU, Device, get_device
from .kernels.cache import NodeTimeCache as _EmbedCache
from .stats import CacheLayerStats, ContextStats, LatencyStats, PinnedPoolStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .graph import TGraph

__all__ = ["TContext"]

#: sentinel distinguishing "cache_limit not passed" from an explicit value.
_UNSET = object()

#: store-space prefix of per-layer embedding memoization caches.
_EMBED_PREFIX = "embed:"


class TContext:
    """Runtime settings and scratch space for TGLite computations.

    Args:
        graph: the :class:`~repro.core.graph.TGraph` this context serves.
        device: simulated device computation runs on.
        cache_limit: **deprecated** — capacity (rows) of each per-layer
            embedding cache; values ``<= 0`` disable embedding caching.
            Passing it pins the legacy behaviour exactly (flat FIFO hot
            tier, no staging/cold/prefetch).  Use ``store=`` instead.
        time_window: rounding resolution for precomputed-time lookups; time
            deltas are quantized to multiples of this before table lookup
            (0 means exact float matching).
        store: the tiered feature store behind the caches — a
            :class:`~repro.store.api.StoreConfig` (a store is built from
            it), an existing :class:`~repro.store.tiered.TieredFeatureStore`
            to share, or ``None`` for defaults.
    """

    def __init__(
        self,
        graph: "TGraph",
        device: Union[str, Device, None] = None,
        cache_limit=_UNSET,
        time_window: float = 0.0,
        store: Union[StoreConfig, TieredFeatureStore, None] = None,
    ):
        self.graph = graph
        self.device = get_device(device)
        self.time_window = time_window
        self.training = True
        graph.ctx = self

        if cache_limit is not _UNSET:
            if store is not None:
                raise ValueError(
                    "pass either store= or the deprecated cache_limit=, not both")
            warnings.warn(
                "TContext(cache_limit=...) is deprecated; pass "
                "store=StoreConfig(hot_capacity=..., hot_policy='fifo', "
                "staging_rows=0, prefetch_depth=0) for the legacy flat "
                "cache, or use the tiered defaults",
                DeprecationWarning,
                stacklevel=2,
            )
            # Legacy semantics, bit-for-bit: one flat FIFO ring per layer,
            # nothing demoted, nothing prefetched.
            store = StoreConfig(
                hot_capacity=int(cache_limit), hot_policy="fifo",
                staging_rows=0, prefetch_depth=0,
            )
        if isinstance(store, TieredFeatureStore):
            self.store = store
        else:
            self.store = TieredFeatureStore(
                store if store is not None else StoreConfig(),
                timer=self.add_kernel_time,
            )
        #: hot-tier row capacity (kept as a readable attribute for the
        #: serve ladder's ``cache_limit <= 0`` disabled-cache check).
        self.cache_limit = self.store.config.hot_capacity
        self._time_tables: Dict[int, dict] = {}
        self._time_zero_rows: Dict[int, Tuple[int, np.ndarray]] = {}
        #: operator-effectiveness counters (rows seen/removed per operator),
        #: updated by dedup()/cache(); read via stats().
        self.counters: Dict[str, int] = {}
        #: accumulated wall-clock seconds per hot-path kernel.
        self._kernel_seconds: Dict[str, float] = {}
        #: kernels downgraded to their uncached/reference paths, keyed by
        #: site name ('kernel.sample', 'kernel.cache') with a reason.
        self.degraded: Dict[str, str] = {}
        #: transient faults after which a kernel is degraded.
        self.degrade_threshold: int = 3
        self._kernel_faults: Dict[str, int] = {}
        #: optional cap on sampler fanout (the serving runtime's
        #: degradation ladder shrinks it under deadline pressure; see
        #: :meth:`TSampler.effective_fanout`).  None = no cap.
        self.fanout_limit: Optional[int] = None
        #: bounded reservoir of recent request latencies (seconds on the
        #: serving runtime's simulated clock) + total count ever recorded.
        self._latencies: list = []
        self._latency_count = 0
        self._latency_reservoir = 8192

    # ---- modes ------------------------------------------------------------------

    def train(self, mode: bool = True) -> "TContext":
        """Switch the context into training (True) or inference mode."""
        self.training = mode
        if mode:
            # Cached embeddings are invalid once parameters start moving.
            self.clear_embed_cache()
        return self

    def eval(self) -> "TContext":
        return self.train(False)

    # ---- pinned pool ---------------------------------------------------------------

    @property
    def pinned_pool(self) -> _PinnedPool:
        return self.store.pinned_pool

    def stage_pinned(self, rows: np.ndarray) -> Tensor:
        """Stage host rows into the pinned pool (see ``op.preload``)."""
        return self.store.pinned_pool.stage(rows)

    # ---- embedding cache -------------------------------------------------------------

    def embed_cache(self, layer: int) -> _EmbedCache:
        """One layer's embedding cache — the hot tier of its store space.

        Kept for compatibility and statistics; rows stored here flow
        through the same tiering/eviction chain as every other space.
        """
        return self.store.space(f"{_EMBED_PREFIX}{int(layer)}").hot

    @property
    def _embed_caches(self) -> Dict[int, _EmbedCache]:
        """Read-only layer -> hot-cache view (legacy introspection).

        ``resilience.validate`` iterates this; mutating the returned dict
        does nothing — use :meth:`clear_embed_cache` / ``store.evict()``.
        """
        out: Dict[int, _EmbedCache] = {}
        for name in self.store.spaces():
            if name.startswith(_EMBED_PREFIX):
                out[int(name[len(_EMBED_PREFIX):])] = self.store.space(name).hot
        return out

    def clear_embed_cache(self) -> None:
        for name in self.store.spaces():
            if name.startswith(_EMBED_PREFIX):
                self.store.evict(name)

    # ---- instrumentation --------------------------------------------------------

    def count(self, key: str, amount: int) -> None:
        """Accumulate an operator counter (e.g. 'dedup_rows_in')."""
        self.counters[key] = self.counters.get(key, 0) + int(amount)

    def add_kernel_time(self, name: str, seconds: float) -> None:
        """Accumulate wall-clock seconds under a kernel name."""
        self._kernel_seconds[name] = self._kernel_seconds.get(name, 0.0) + seconds

    def record_latency(self, seconds: float) -> None:
        """Record one request's end-to-end latency (serving runtime).

        Kept in a bounded reservoir of the most recent samples; the p50/p99
        surfaced by :meth:`stats` are computed over that reservoir.
        """
        self._latency_count += 1
        self._latencies.append(float(seconds))
        if len(self._latencies) > self._latency_reservoir:
            del self._latencies[: -self._latency_reservoir]

    def _latency_stats(self) -> Optional[LatencyStats]:
        if not self._latencies:
            return None
        arr = np.asarray(self._latencies)
        return LatencyStats(
            count=self._latency_count,
            p50=float(np.percentile(arr, 50)),
            p99=float(np.percentile(arr, 99)),
            mean=float(arr.mean()),
        )

    # ---- graceful degradation ---------------------------------------------------

    def record_kernel_fault(self, site: str) -> bool:
        """Count one transient fault at *site*; degrade past the threshold.

        After ``degrade_threshold`` transient faults the named kernel is
        downgraded for the rest of the run: ``'kernel.sample'`` dispatches
        to the loop-reference sampler (bit-identical, slower) and
        ``'kernel.cache'`` disables embedding memoization (``op.cache``
        becomes a no-op and lookups bypass the faulty table).  Returns
        True on the call that triggers the downgrade.
        """
        count = self._kernel_faults.get(site, 0) + 1
        self._kernel_faults[site] = count
        self.count(f"kernel_faults:{site}", 1)
        if site not in self.degraded and count >= self.degrade_threshold:
            self.degraded[site] = (
                f"degraded to fallback path after {count} transient faults"
            )
            return True
        return False

    def is_degraded(self, site: str) -> bool:
        """Whether *site* has been downgraded to its fallback path."""
        return site in self.degraded

    def stats(self) -> ContextStats:
        """One frozen snapshot of all context instrumentation.

        Bundles the operator counters, per-layer embedding-cache hit
        statistics, pinned-pool reuse counts, and per-kernel wall time —
        the numbers §5.2's discussion attributes speedups to.
        """
        pool = self.store.pinned_pool
        return ContextStats(
            counters=dict(self.counters),
            cache={
                layer: CacheLayerStats(c.hits, c.lookups, c.num_entries,
                                       c.evictions)
                for layer, c in self._embed_caches.items()
            },
            pinned=PinnedPoolStats(pool.hits, pool.misses),
            kernel_seconds=dict(self._kernel_seconds),
            degraded=dict(self.degraded),
            kernel_faults=dict(self._kernel_faults),
            latency=self._latency_stats(),
            store=self.store.stats(),
        )

    def reset_stats(self) -> None:
        """Zero all instrumentation (counters, hit stats, kernel times).

        Cache *contents* are kept — only the statistics reset.
        """
        self.counters.clear()
        self._kernel_seconds.clear()
        self._latencies.clear()
        self._latency_count = 0
        self.store.reset_stats()

    # ---- deprecated instrumentation shims -----------------------------------

    def cache_stats(self) -> Dict[int, float]:
        """Deprecated: use ``stats().cache`` instead."""
        warnings.warn(
            "TContext.cache_stats() is deprecated; use stats().cache",
            DeprecationWarning,
            stacklevel=2,
        )
        return {layer: c.hit_rate for layer, c in self.stats().cache.items()}

    def op_stats(self) -> Dict[str, float]:
        """Deprecated: use ``stats().as_dict()`` instead."""
        warnings.warn(
            "TContext.op_stats() is deprecated; use stats().as_dict()",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.stats().as_dict()

    def reset_counters(self) -> None:
        """Deprecated: use ``reset_stats()`` instead."""
        warnings.warn(
            "TContext.reset_counters() is deprecated; use reset_stats()",
            DeprecationWarning,
            stacklevel=2,
        )
        self.reset_stats()

    # ---- precomputed time tables --------------------------------------------------------

    def time_table(self, encoder_id: int) -> dict:
        """Scratch dict for one TimeEncode module's precomputed vectors."""
        table = self._time_tables.get(encoder_id)
        if table is None:
            table = {"version": None, "values": None, "rows": None}
            self._time_tables[encoder_id] = table
        return table

    def time_zero_slot(self, encoder_id: int):
        return self._time_zero_rows.get(encoder_id)

    def set_time_zero_slot(self, encoder_id: int, version: int, row: np.ndarray) -> None:
        self._time_zero_rows[encoder_id] = (version, row)

    def clear_time_tables(self) -> None:
        self._time_tables.clear()
        self._time_zero_rows.clear()

    # ---- misc ------------------------------------------------------------------------------

    def reset(self) -> None:
        """Drop all scratch state (between experiments)."""
        self.store.pinned_pool.clear()
        self.store.clear()
        self.clear_time_tables()
        self.degraded.clear()
        self._kernel_faults.clear()
        self.fanout_limit = None

    def __repr__(self) -> str:
        return f"TContext(device='{self.device}', training={self.training})"
