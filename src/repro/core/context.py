"""TContext: settings and scratch space used by the TGLite runtime.

A :class:`TContext` carries (a) placement policy — which simulated device
computation runs on and where raw feature data lives — and (b) scratch
storage for the optimization operators: the embedding cache used by
``op.cache()``, the precomputed time-vector tables used by
``op.precomputed_times()``/``op.precomputed_zeros()``, and the pool of
pinned staging buffers used by ``op.preload()``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

import numpy as np

from ..tensor import Tensor
from ..tensor.device import CPU, Device, get_device

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .graph import TGraph

__all__ = ["TContext"]


class _PinnedPool:
    """Reusable pinned staging buffers, keyed by trailing row shape + dtype.

    Mirrors TGLite's pre-allocated pinned-memory pool: ``preload()`` copies
    gathered feature rows into a pooled buffer so the (simulated) DMA engine
    can transfer at pinned bandwidth without per-batch allocation.
    """

    def __init__(self):
        self._buffers: Dict[Tuple[Tuple[int, ...], str], np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    def stage(self, rows: np.ndarray) -> Tensor:
        """Copy *rows* into a pooled pinned host buffer and return it."""
        key = (rows.shape[1:], rows.dtype.str)
        buf = self._buffers.get(key)
        if buf is None or buf.shape[0] < rows.shape[0]:
            capacity = max(rows.shape[0], 2 * (buf.shape[0] if buf is not None else 0))
            buf = np.empty((capacity,) + rows.shape[1:], dtype=rows.dtype)
            self._buffers[key] = buf
            self.misses += 1
        else:
            self.hits += 1
        view = buf[: rows.shape[0]]
        np.copyto(view, rows)
        staged = Tensor(view, device=CPU, pinned=True)
        return staged

    def clear(self) -> None:
        self._buffers.clear()


class _EmbedCache:
    """Bounded (node, time) -> embedding row store backing ``op.cache()``.

    Entries live in a ring of numpy rows; the dict maps the (node, time)
    pair to its slot.  Eviction is FIFO by slot reuse, which matches the
    behaviour TGOpt describes for its memoization table.
    """

    def __init__(self, capacity: int, dim: Optional[int] = None):
        self.capacity = int(capacity)
        self.dim = dim
        self._slots: Optional[np.ndarray] = None
        self._index: Dict[Tuple[int, float], int] = {}
        self._keys: list = []
        self._cursor = 0
        self.hits = 0
        self.lookups = 0

    def _ensure(self, dim: int) -> None:
        if self._slots is None:
            self.dim = dim
            self._slots = np.zeros((self.capacity, dim), dtype=np.float32)
            self._keys = [None] * self.capacity

    def lookup(self, nodes: np.ndarray, times: np.ndarray) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Return (hit_mask, rows) for each (node, time) query pair."""
        n = len(nodes)
        self.lookups += n
        hit_mask = np.zeros(n, dtype=bool)
        if self._slots is None or n == 0:
            return hit_mask, None
        rows = np.zeros((n, self.dim), dtype=np.float32)
        index = self._index
        for i in range(n):
            slot = index.get((int(nodes[i]), float(times[i])))
            if slot is not None:
                hit_mask[i] = True
                rows[i] = self._slots[slot]
        self.hits += int(hit_mask.sum())
        return hit_mask, rows

    def store(self, nodes: np.ndarray, times: np.ndarray, values: np.ndarray) -> None:
        if len(nodes) == 0:
            return
        self._ensure(values.shape[1])
        for i in range(len(nodes)):
            slot = self._cursor
            old_key = self._keys[slot]
            if old_key is not None:
                self._index.pop(old_key, None)
            key = (int(nodes[i]), float(times[i]))
            self._index[key] = slot
            self._keys[slot] = key
            self._slots[slot] = values[i]
            self._cursor = (self._cursor + 1) % self.capacity

    def clear(self) -> None:
        self._index.clear()
        self._keys = [None] * self.capacity if self._slots is not None else []
        self._cursor = 0
        self.hits = 0
        self.lookups = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class TContext:
    """Runtime settings and scratch space for TGLite computations.

    Args:
        graph: the :class:`~repro.core.graph.TGraph` this context serves.
        device: simulated device computation runs on.
        cache_limit: capacity (rows) of each per-layer embedding cache.
        time_window: rounding resolution for precomputed-time lookups; time
            deltas are quantized to multiples of this before table lookup
            (0 means exact float matching).
    """

    def __init__(
        self,
        graph: "TGraph",
        device: Union[str, Device, None] = None,
        cache_limit: int = 20000,
        time_window: float = 0.0,
    ):
        self.graph = graph
        self.device = get_device(device)
        self.cache_limit = cache_limit
        self.time_window = time_window
        self.training = True
        graph.ctx = self

        self._pinned_pool = _PinnedPool()
        self._embed_caches: Dict[int, _EmbedCache] = {}
        self._time_tables: Dict[int, dict] = {}
        self._time_zero_rows: Dict[int, Tuple[int, np.ndarray]] = {}
        #: operator-effectiveness counters (rows seen/removed per operator),
        #: updated by dedup()/cache(); see op_stats().
        self.counters: Dict[str, int] = {}

    # ---- modes ------------------------------------------------------------------

    def train(self, mode: bool = True) -> "TContext":
        """Switch the context into training (True) or inference mode."""
        self.training = mode
        if mode:
            # Cached embeddings are invalid once parameters start moving.
            self.clear_embed_cache()
        return self

    def eval(self) -> "TContext":
        return self.train(False)

    # ---- pinned pool ---------------------------------------------------------------

    @property
    def pinned_pool(self) -> _PinnedPool:
        return self._pinned_pool

    def stage_pinned(self, rows: np.ndarray) -> Tensor:
        """Stage host rows into the pinned pool (see ``op.preload``)."""
        return self._pinned_pool.stage(rows)

    # ---- embedding cache -------------------------------------------------------------

    def embed_cache(self, layer: int) -> _EmbedCache:
        """The (lazily created) embedding cache for a given layer index."""
        cache = self._embed_caches.get(layer)
        if cache is None:
            cache = _EmbedCache(self.cache_limit)
            self._embed_caches[layer] = cache
        return cache

    def clear_embed_cache(self) -> None:
        for cache in self._embed_caches.values():
            cache.clear()

    def cache_stats(self) -> Dict[int, float]:
        """Per-layer cache hit rates (for instrumentation/benchmarks)."""
        return {layer: c.hit_rate for layer, c in self._embed_caches.items()}

    # ---- operator-effectiveness counters -----------------------------------

    def count(self, key: str, amount: int) -> None:
        """Accumulate an operator counter (e.g. 'dedup_rows_in')."""
        self.counters[key] = self.counters.get(key, 0) + int(amount)

    def op_stats(self) -> Dict[str, float]:
        """Summarize operator effectiveness from the accumulated counters.

        Returns ratios such as ``dedup_reduction`` (fraction of destination
        rows removed by dedup) and ``cache_hit_rate`` alongside the raw
        counters — the numbers §5.2's discussion attributes speedups to.
        """
        stats: Dict[str, float] = dict(self.counters)
        rows_in = self.counters.get("dedup_rows_in", 0)
        rows_out = self.counters.get("dedup_rows_out", 0)
        if rows_in:
            stats["dedup_reduction"] = 1.0 - rows_out / rows_in
        lookups = sum(c.lookups for c in self._embed_caches.values())
        hits = sum(c.hits for c in self._embed_caches.values())
        if lookups:
            stats["cache_hit_rate"] = hits / lookups
        return stats

    def reset_counters(self) -> None:
        self.counters.clear()

    # ---- precomputed time tables --------------------------------------------------------

    def time_table(self, encoder_id: int) -> dict:
        """Scratch dict for one TimeEncode module's precomputed vectors."""
        table = self._time_tables.get(encoder_id)
        if table is None:
            table = {"version": None, "values": None, "rows": None}
            self._time_tables[encoder_id] = table
        return table

    def time_zero_slot(self, encoder_id: int):
        return self._time_zero_rows.get(encoder_id)

    def set_time_zero_slot(self, encoder_id: int, version: int, row: np.ndarray) -> None:
        self._time_zero_rows[encoder_id] = (version, row)

    def clear_time_tables(self) -> None:
        self._time_tables.clear()
        self._time_zero_rows.clear()

    # ---- misc ------------------------------------------------------------------------------

    def reset(self) -> None:
        """Drop all scratch state (between experiments)."""
        self._pinned_pool.clear()
        self._embed_caches.clear()
        self.clear_time_tables()

    def __repr__(self) -> str:
        return f"TContext(device='{self.device}', training={self.training})"
