"""Crash-consistent durable state store: WAL-then-apply + snapshot replay.

:class:`DurableStateStore` composes the :class:`~repro.durable.wal.WriteAheadLog`
and the snapshot files into the commit protocol both runtimes share:

1. **log** the state delta (a committed :class:`EventBatch`, a training
   delta, or a control marker) *before* applying it in RAM;
2. if the apply is subsequently rolled back (post-apply validation
   failed), **log an abort** so recovery skips the record;
3. periodically write a **snapshot** of the full applied state and
   **compact** sealed log segments below it.

Recovery (:meth:`recover`) is prefix-consistent and idempotent: load the
newest intact snapshot, then replay the committed log suffix — stopping
at the first torn/corrupt record — with aborted records filtered out.
Re-opening the store after a crash physically truncates the torn tail
(see :mod:`repro.durable.wal`), so two recoveries of the same directory
yield bit-identical state.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .codec import (
    KIND_ABORT,
    KIND_BATCH,
    KIND_DELTA,
    KIND_MARKER,
    CodecError,
    decode_payload,
    encode_payload,
)
from .snapshot import load_latest, prune_snapshots, write_snapshot
from .wal import WriteAheadLog

__all__ = ["DurableRecord", "RecoveredState", "DurableStateStore"]


@dataclass(frozen=True)
class DurableRecord:
    """One decoded, non-aborted record of the committed log suffix."""

    lsn: int
    kind: int
    meta: Dict
    arrays: Dict[str, np.ndarray]


@dataclass
class RecoveredState:
    """Everything :meth:`DurableStateStore.recover` reconstructs."""

    #: log position of the loaded snapshot (0 = no snapshot, clean start).
    snapshot_lsn: int = 0
    snapshot_meta: Dict = field(default_factory=dict)
    snapshot_arrays: Optional[Dict[str, np.ndarray]] = None
    #: committed, non-aborted records with ``lsn > snapshot_lsn``, in order.
    records: List[DurableRecord] = field(default_factory=list)
    #: records dropped because a later abort record named them.
    aborted: int = 0

    @property
    def last_lsn(self) -> int:
        return self.records[-1].lsn if self.records else self.snapshot_lsn


class DurableStateStore:
    """Write-ahead-logged durable state with snapshot + replay recovery.

    Args:
        directory: home of WAL segments and snapshot files.
        fsync: WAL durability policy (``'always'`` / ``'batch'`` /
            ``'never'``); ``'batch'`` group-commits every
            ``fsync_interval`` records.
        fsync_interval: appends per group-commit sync.
        segment_bytes: WAL segment rotation threshold.
        snapshots_keep: snapshots retained after each :meth:`snapshot`.
    """

    def __init__(
        self,
        directory: str,
        fsync: str = "batch",
        fsync_interval: int = 32,
        segment_bytes: int = 1 << 20,
        snapshots_keep: int = 2,
    ):
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.snapshots_keep = int(snapshots_keep)
        self.wal = WriteAheadLog(
            self.directory,
            segment_bytes=segment_bytes,
            fsync=fsync,
            fsync_interval=fsync_interval,
        )
        self.snapshots_written = 0
        self.compacted_segments = 0

    # ---- logging -----------------------------------------------------------------

    def log_batch(self, arrays: Dict[str, np.ndarray], meta: Optional[Dict] = None) -> int:
        """Log one committed-state delta (WAL-then-apply); returns its LSN."""
        return self.wal.append(encode_payload(KIND_BATCH, meta or {}, arrays))

    def log_delta(self, arrays: Dict[str, np.ndarray], meta: Optional[Dict] = None) -> int:
        """Log one incremental training-state delta; returns its LSN."""
        return self.wal.append(encode_payload(KIND_DELTA, meta or {}, arrays))

    def log_abort(self, target_lsn: int, reason: str = "") -> int:
        """Mark a previously logged record as rolled back."""
        return self.wal.append(
            encode_payload(
                KIND_ABORT, {"target": int(target_lsn), "reason": reason}, {}
            )
        )

    def log_marker(self, name: str, meta: Optional[Dict] = None) -> int:
        """Log a control marker (e.g. ``checkpoint`` / ``rollback``)."""
        payload = dict(meta or {})
        payload["name"] = name
        return self.wal.append(encode_payload(KIND_MARKER, payload, {}))

    def sync(self) -> None:
        """Force group-committed records durable now."""
        self.wal.sync()

    # ---- snapshot + compaction ---------------------------------------------------

    def snapshot(self, arrays: Dict[str, np.ndarray], meta: Optional[Dict] = None) -> str:
        """Snapshot the *applied* state at the current log position, then
        compact sealed segments the snapshot makes redundant."""
        self.wal.sync()
        lsn = self.wal.last_lsn
        path = write_snapshot(self.directory, lsn, meta or {}, arrays)
        prune_snapshots(self.directory, keep=self.snapshots_keep)
        self.compacted_segments += self.wal.compact_below(lsn + 1)
        self.snapshots_written += 1
        return path

    # ---- recovery ----------------------------------------------------------------

    def recover(self) -> RecoveredState:
        """Reconstruct the committed durable state (prefix-consistent).

        Pure read: loads the newest intact snapshot, replays the
        committed log suffix above it, and filters aborted records.
        Calling it twice returns identical results.
        """
        out = RecoveredState()
        snap = load_latest(self.directory)
        if snap is not None:
            out.snapshot_lsn, out.snapshot_meta, out.snapshot_arrays = snap
        raw: List[DurableRecord] = []
        aborted: set = set()
        for lsn, payload in self.wal.replay():
            if lsn <= out.snapshot_lsn:
                continue  # already folded into the snapshot
            try:
                kind, meta, arrays = decode_payload(payload)
            except CodecError:
                break  # defensive: treat as the start of the torn tail
            if kind == KIND_ABORT:
                aborted.add(int(meta.get("target", -1)))
                continue
            raw.append(DurableRecord(lsn, kind, meta, arrays))
        out.records = [r for r in raw if r.lsn not in aborted]
        out.aborted = len(raw) - len(out.records)
        return out

    # ---- reporting / lifecycle ---------------------------------------------------

    def stats(self) -> Dict[str, object]:
        flat = {f"wal:{k}": v for k, v in self.wal.stats.as_dict().items()}
        flat["wal:segments"] = self.wal.num_segments
        flat["wal:size_bytes"] = self.wal.size_bytes()
        flat["wal:last_lsn"] = self.wal.last_lsn
        flat["snapshots_written"] = self.snapshots_written
        flat["compacted_segments"] = self.compacted_segments
        return flat

    def close(self) -> None:
        self.wal.close()

    def __enter__(self) -> "DurableStateStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DurableStateStore({self.directory!r}, last_lsn={self.wal.last_lsn}, "
            f"segments={self.wal.num_segments})"
        )
