"""Append-only write-ahead log with CRC framing and torn-tail recovery.

The :class:`WriteAheadLog` is the durability primitive under both
runtimes: every state change is appended as a length-prefixed,
CRC32-protected record *before* it is applied, so a process killed at
any byte offset recovers to a consistent committed prefix.

**On-disk format.**  The log is a directory of segment files
(``wal-00000001.log``, …), each starting with a 16-byte header
(``TGLITEWAL001`` magic + u32 version).  A record is::

    u32  length            # of body = 8 (lsn) + len(payload)
    u32  crc32(body)
    u64  lsn               # strictly increasing, log-wide
    ...  payload

**Recovery.**  :meth:`replay` scans segments in order and yields
``(lsn, payload)`` for the *committed prefix*: it stops at the first
record that is torn (fewer bytes than its length claims), fails its CRC
(bit flip, corrupted length), or breaks the LSN sequence (a hole from a
lost fsync).  A record whose LSN repeats the previous one (a duplicated
tail from a retried write) is skipped, not fatal.  Opening the log
repairs it physically — the torn tail is truncated and orphaned later
segments are deleted — so re-opening is idempotent and new appends never
interleave with garbage.

**Durability policy.** ``fsync='always'`` syncs every append;
``'batch'`` (group commit) syncs every ``fsync_interval`` appends and on
rotation/close, trading a bounded tail-loss window for ~10x cheaper
appends; ``'never'`` leaves syncing to the OS.  Every append is flushed
to the OS regardless, so only a machine-level crash (or the injected
``disk.fsync`` lost-sync fault) can lose the window.

**Fault injection.**  All writes consult the ``disk.write`` site and all
fsyncs the ``disk.fsync`` site (:mod:`repro.resilience.hooks`); replay
reads consult ``disk.read``.  Directives simulate torn writes at an
arbitrary byte offset, silent bit flips, duplicated tail records, and
lost fsyncs followed by a crash (:class:`SimulatedDiskCrash`).
"""

from __future__ import annotations

import hashlib
import os
import re
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..resilience.errors import SimulatedDiskCrash
from ..resilience.hooks import poke as _poke

__all__ = [
    "WALStats",
    "WriteAheadLog",
    "fsync_dir",
    "list_segment_files",
    "read_segment_bytes",
    "parse_segment",
    "encode_shipped_record",
    "decode_shipped_record",
]

MAGIC = b"TGLITEWAL001"
VERSION = 1
_HEADER = MAGIC + struct.pack("<I", VERSION)
_HEADER_SIZE = len(_HEADER)  # 16
_FRAME = struct.Struct("<II")  # length, crc32
_LSN = struct.Struct("<Q")
#: hard upper bound on one record body; anything larger is parse garbage.
MAX_RECORD_BYTES = 1 << 30
_SEGMENT_RE = re.compile(r"^wal-(\d{8})\.log$")

_FSYNC_POLICIES = ("always", "batch", "never")


def list_segment_files(directory: str) -> List[Tuple[int, str]]:
    """Return ``(seq, path)`` for every segment file in *directory*, sorted.

    Shared by the owning :class:`WriteAheadLog` and independent readers
    (:class:`repro.durable.tail.WALCursor`) so both agree on what the log
    physically consists of.
    """
    out = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        m = _SEGMENT_RE.match(name)
        if m:
            out.append((int(m.group(1)), os.path.join(directory, name)))
    return sorted(out)


def read_segment_bytes(path: str, inject: bool) -> bytes:
    """Read one segment file, optionally through the ``disk.read`` site."""
    with open(path, "rb") as fh:
        buf = fh.read()
    if inject and len(buf):
        directive = _poke("disk.read", path=path, size=len(buf))
        if directive is not None and directive[0] == "flip":
            ba = bytearray(buf)
            ba[directive[1] % len(ba)] ^= 1 << directive[2]
            buf = bytes(ba)
    return buf


def parse_segment(
    buf: bytes, prev_lsn: Optional[int]
) -> Tuple[List[Tuple[int, bytes, int]], int, bool, Optional[int]]:
    """Parse one segment buffer's committed prefix.

    Returns ``(records, valid_end, intact, last_lsn)`` where ``records``
    are the valid ``(lsn, payload, crc)`` triples, ``valid_end`` is the
    byte offset just past the last valid record (0 when the header itself
    is bad), and ``intact`` says the whole buffer parsed.  Parsing stops
    — without raising — at the first torn frame, CRC mismatch, nonsense
    length, or LSN hole; a record repeating the previous LSN (duplicated
    tail from a retried write) is skipped, not fatal.  This is the one
    shared definition of "committed prefix" used by the owning
    :class:`WriteAheadLog` and by independent tailing readers.
    """
    if len(buf) < _HEADER_SIZE or buf[:_HEADER_SIZE] != _HEADER:
        return [], 0, False, prev_lsn
    records: List[Tuple[int, bytes, int]] = []
    pos = _HEADER_SIZE
    valid_end = pos
    last = prev_lsn
    while pos < len(buf):
        if pos + _FRAME.size > len(buf):
            break  # torn frame header
        length, crc = _FRAME.unpack_from(buf, pos)
        if length < _LSN.size or length > MAX_RECORD_BYTES:
            break  # nonsense length (corruption)
        if pos + _FRAME.size + length > len(buf):
            break  # torn body
        body = buf[pos + _FRAME.size : pos + _FRAME.size + length]
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            break  # bit flip / corrupted frame
        (lsn,) = _LSN.unpack_from(body)
        pos += _FRAME.size + length
        if last is not None and lsn == last:
            valid_end = pos  # duplicated tail record: skip, keep going
            continue
        if last is not None and lsn != last + 1:
            # LSN hole: an earlier record never became durable (lost
            # fsync) — everything from here on is not a valid prefix.
            pos -= _FRAME.size + length
            break
        records.append((lsn, body[_LSN.size :], crc))
        last = lsn
        valid_end = pos
    return records, valid_end, pos >= len(buf), last


def encode_shipped_record(lsn: int, payload: bytes) -> bytes:
    """Frame one WAL record for log-shipping over a (simulated) wire.

    The wire format is byte-identical to the on-disk record frame
    (``u32 length | u32 crc32(body) | u64 lsn | payload``), so a follower
    that appends the decoded payload to its own log reproduces the
    primary's record exactly and :func:`parse_segment` applies unchanged
    on both sides of the ship.
    """
    body = _LSN.pack(int(lsn)) + bytes(payload)
    return _FRAME.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF) + body


def decode_shipped_record(buf: bytes) -> Tuple[int, bytes]:
    """Inverse of :func:`encode_shipped_record`; returns ``(lsn, payload)``.

    Raises ``ValueError`` on a torn frame, nonsense length, trailing
    garbage, or CRC mismatch — a follower must reject (and re-request) a
    damaged shipment rather than append corruption to its log.
    """
    if len(buf) < _FRAME.size:
        raise ValueError("shipped record torn: frame header incomplete")
    length, crc = _FRAME.unpack_from(buf, 0)
    if length < _LSN.size or length > MAX_RECORD_BYTES:
        raise ValueError(f"shipped record has nonsense length {length}")
    if len(buf) != _FRAME.size + length:
        raise ValueError(
            f"shipped record size mismatch: frame claims {length} body "
            f"bytes, buffer carries {len(buf) - _FRAME.size}"
        )
    body = buf[_FRAME.size :]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise ValueError("shipped record failed CRC (corrupted in flight)")
    (lsn,) = _LSN.unpack_from(body)
    return lsn, body[_LSN.size :]


def fsync_dir(path: str) -> bool:
    """fsync a directory so renames/creates/unlinks inside it are durable.

    Returns False (instead of raising) on platforms where directories
    cannot be opened or synced — the write itself already succeeded, and
    there is no portable fallback beyond hoping the OS flushes soon.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return False
    try:
        os.fsync(fd)
        return True
    except OSError:
        return False
    finally:
        os.close(fd)


@dataclass
class WALStats:
    """Running write-ahead-log counters."""

    appends: int = 0
    bytes_appended: int = 0
    syncs: int = 0
    rotations: int = 0
    #: bytes of torn tail truncated by open-time repair.
    repaired_bytes: int = 0
    #: orphaned segment files deleted by open-time repair.
    repaired_segments: int = 0

    def as_dict(self) -> dict:
        return {
            "appends": self.appends,
            "bytes_appended": self.bytes_appended,
            "syncs": self.syncs,
            "rotations": self.rotations,
            "repaired_bytes": self.repaired_bytes,
            "repaired_segments": self.repaired_segments,
        }


@dataclass
class _Segment:
    path: str
    seq: int
    first_lsn: Optional[int]  # None for an empty segment
    last_lsn: Optional[int]


class WriteAheadLog:
    """Append-only, segment-rotated, CRC-framed durable log.

    Args:
        directory: where segment files live (created if missing).
        segment_bytes: rotate to a fresh segment once the current one
            exceeds this size.
        fsync: ``'always'`` | ``'batch'`` | ``'never'`` (see module doc).
        fsync_interval: appends per group-commit sync under ``'batch'``.
    """

    def __init__(
        self,
        directory: str,
        segment_bytes: int = 1 << 20,
        fsync: str = "batch",
        fsync_interval: int = 32,
    ):
        if fsync not in _FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {_FSYNC_POLICIES}, got {fsync!r}")
        if fsync_interval < 1:
            raise ValueError("fsync_interval must be >= 1")
        self.directory = os.path.abspath(directory)
        self.segment_bytes = int(segment_bytes)
        self.fsync = fsync
        self.fsync_interval = int(fsync_interval)
        self.stats = WALStats()
        self.last_lsn = 0
        self._segments: List[_Segment] = []
        self._fh = None
        self._size = 0  # bytes written to the current segment
        self._synced_size = 0  # durable prefix of the current segment
        self._appends_since_sync = 0
        self._dead = False
        os.makedirs(self.directory, exist_ok=True)
        self._open_and_repair()

    # ---- opening / repair --------------------------------------------------------

    def _segment_files(self) -> List[Tuple[int, str]]:
        return list_segment_files(self.directory)

    def _open_and_repair(self) -> None:
        """Scan existing segments, truncate the torn tail, open for append."""
        prev_lsn: Optional[int] = None
        keep: List[_Segment] = []
        cut = False
        for seq, path in self._segment_files():
            if cut:
                os.remove(path)
                self.stats.repaired_segments += 1
                continue
            size = os.path.getsize(path)
            records, valid_end, intact, last = self._parse_segment(
                path, prev_lsn, inject=False
            )
            if not intact:
                cut = True
                if valid_end == 0:
                    # Header itself is invalid: the whole file is garbage.
                    os.remove(path)
                    self.stats.repaired_segments += 1
                    self.stats.repaired_bytes += size
                    continue
                with open(path, "r+b") as fh:
                    fh.truncate(valid_end)
                    fh.flush()
                    os.fsync(fh.fileno())
                self.stats.repaired_bytes += size - valid_end
            first = records[0][0] if records else None
            keep.append(_Segment(path, seq, first, records[-1][0] if records else None))
            if records:
                prev_lsn = records[-1][0]
        if cut:
            fsync_dir(self.directory)
        self._segments = keep
        self.last_lsn = prev_lsn or 0
        if self._segments:
            current = self._segments[-1]
            self._fh = open(current.path, "ab")
            self._size = os.path.getsize(current.path)
            self._synced_size = self._size
        else:
            self._create_segment(1)

    def _create_segment(self, seq: int) -> None:
        path = os.path.join(self.directory, f"wal-{seq:08d}.log")
        fh = open(path, "wb")
        fh.write(_HEADER)
        fh.flush()
        os.fsync(fh.fileno())
        fsync_dir(self.directory)
        self._fh = fh
        self._size = _HEADER_SIZE
        self._synced_size = _HEADER_SIZE
        self._segments.append(_Segment(path, seq, None, None))

    # ---- parsing -----------------------------------------------------------------

    def _parse_segment(
        self, path: str, prev_lsn: Optional[int], inject: bool
    ) -> Tuple[List[Tuple[int, bytes]], int, bool, Optional[int]]:
        """Parse one segment's committed prefix (see :func:`parse_segment`)."""
        buf = read_segment_bytes(path, inject)
        records, valid_end, intact, last = parse_segment(buf, prev_lsn)
        return [(lsn, payload) for lsn, payload, _ in records], valid_end, intact, last

    # ---- appending ---------------------------------------------------------------

    def _check_alive(self) -> None:
        if self._dead:
            raise RuntimeError(
                "this WriteAheadLog crashed (simulated); construct a new "
                "one over the same directory to recover"
            )
        if self._fh is None:
            raise RuntimeError("WriteAheadLog is closed")

    def append(self, payload: bytes) -> int:
        """Durably append *payload* as the next record; returns its LSN.

        May raise :class:`SimulatedDiskCrash` when the installed fault
        injector tears this write — the on-disk tail then holds a byte
        prefix of the record, which recovery discards.
        """
        self._check_alive()
        lsn = self.last_lsn + 1
        body = _LSN.pack(lsn) + bytes(payload)
        data = _FRAME.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF) + body
        if self._size + len(data) > max(self.segment_bytes, _HEADER_SIZE + len(data)) \
                and self._size > _HEADER_SIZE:
            self._rotate()
        self._write_record(data)
        self.last_lsn = lsn
        seg = self._segments[-1]
        if seg.first_lsn is None:
            seg.first_lsn = lsn
        seg.last_lsn = lsn
        self.stats.appends += 1
        self.stats.bytes_appended += len(data)
        self._appends_since_sync += 1
        if self.fsync == "always" or (
            self.fsync == "batch" and self._appends_since_sync >= self.fsync_interval
        ):
            self.sync()
        return lsn

    def _write_record(self, data: bytes) -> None:
        directive = _poke("disk.write", path=self._segments[-1].path, size=len(data))
        fh = self._fh
        if directive is None:
            fh.write(data)
            self._size += len(data)
        elif directive[0] == "torn":
            k = int(directive[1])
            fh.write(data[:k])
            fh.flush()
            self._size += k
            self._dead = True
            raise SimulatedDiskCrash(
                f"torn write: {k}/{len(data)} bytes of record reached "
                f"{self._segments[-1].path!r} before the crash",
                path=self._segments[-1].path,
                offset=self._size,
            )
        elif directive[0] == "flip":
            ba = bytearray(data)
            ba[directive[1] % len(ba)] ^= 1 << directive[2]
            fh.write(bytes(ba))
            self._size += len(data)
        elif directive[0] == "dup":
            fh.write(data)
            fh.write(data)
            self._size += 2 * len(data)
        else:  # pragma: no cover - unknown directive: write cleanly
            fh.write(data)
            self._size += len(data)
        fh.flush()  # always reach the OS; fsync policy governs durability

    def sync(self) -> None:
        """fsync the current segment (fault site ``disk.fsync``).

        Under an injected lost-fsync fault, bytes buffered since the last
        durable sync are dropped and :class:`SimulatedDiskCrash` is
        raised — modelling an fsync that reported success without
        persisting, followed by a power cut.
        """
        self._check_alive()
        self._fh.flush()
        directive = _poke("disk.fsync", path=self._segments[-1].path)
        if directive is not None and directive[0] == "lost":
            self._fh.truncate(self._synced_size)
            self._fh.flush()
            self._dead = True
            raise SimulatedDiskCrash(
                f"lost fsync: {self._size - self._synced_size} un-synced "
                f"bytes of {self._segments[-1].path!r} dropped at the crash",
                path=self._segments[-1].path,
                offset=self._synced_size,
            )
        if self.fsync != "never":
            os.fsync(self._fh.fileno())
        self._synced_size = self._size
        self._appends_since_sync = 0
        self.stats.syncs += 1

    def _rotate(self) -> None:
        """Seal the current segment and start a fresh one."""
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self.stats.rotations += 1
        self._create_segment(self._segments[-1].seq + 1)
        self._appends_since_sync = 0

    # ---- reading -----------------------------------------------------------------

    def replay(self) -> Iterator[Tuple[int, bytes]]:
        """Yield the committed prefix as ``(lsn, payload)`` pairs.

        Stops (without raising) at the first torn/corrupt record or LSN
        hole; reads go through the ``disk.read`` injection site.
        """
        if self._fh is not None:
            self._fh.flush()
        prev: Optional[int] = None
        for seg in self._segments:
            records, _, intact, last = self._parse_segment(seg.path, prev, inject=True)
            for lsn, payload in records:
                yield lsn, payload
            if not intact:
                return
            prev = last if last is not None else prev

    def segment_digests(self) -> List[str]:
        """sha256 hex digest of each live segment's on-disk bytes.

        Flushes the open segment first so the digests cover everything
        appended so far; leaves for the per-replica merkle summary.
        """
        if self._fh is not None:
            self._fh.flush()
        out = []
        for seg in self._segments:
            with open(seg.path, "rb") as fh:
                out.append(hashlib.sha256(fh.read()).hexdigest())
        return out

    def verify(self) -> List[str]:
        """Integrity-check every live segment; returns the damaged paths.

        Re-reads each segment from disk (without fault injection — this
        is the scrubber's ground-truth pass) and parses its committed
        prefix.  A segment whose bytes no longer parse to its full length
        (bit rot, a flipped frame, an LSN hole) is reported damaged.  The
        LSN chain restarts after a damaged segment so one bad segment
        does not implicate every later one.
        """
        if self._fh is not None:
            self._fh.flush()
        prev: Optional[int] = None
        damaged: List[str] = []
        for seg in self._segments:
            _, _, intact, last = self._parse_segment(seg.path, prev, inject=False)
            if not intact:
                damaged.append(seg.path)
                prev = None
            else:
                prev = last if last is not None else prev
        return damaged

    def rotate(self) -> None:
        """Seal the current segment and start a fresh one.

        Public for integrity repair: re-anchoring a damaged log first
        rotates so the damaged segment is sealed, then snapshots so
        :meth:`compact_below` can delete it.
        """
        self._check_alive()
        self._rotate()

    def segment_paths(self) -> List[str]:
        """Paths of every live segment, the open one flushed first."""
        if self._fh is not None:
            self._fh.flush()
        return [seg.path for seg in self._segments]

    # ---- maintenance -------------------------------------------------------------

    def compact_below(self, lsn: int) -> int:
        """Delete sealed segments whose records all precede *lsn*.

        Returns the number of segments removed.  The open segment is
        never removed; callers take a snapshot first, so dropped records
        are re-derivable from it.
        """
        removed = 0
        while len(self._segments) > 1:
            seg = self._segments[0]
            if seg.last_lsn is None or seg.last_lsn >= lsn:
                break
            os.remove(seg.path)
            self._segments.pop(0)
            removed += 1
        if removed:
            fsync_dir(self.directory)
        return removed

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    def size_bytes(self) -> int:
        """Total on-disk size of all live segments."""
        total = 0
        for seg in self._segments:
            if os.path.exists(seg.path):
                total += os.path.getsize(seg.path)
        return total

    def close(self) -> None:
        if self._fh is not None and not self._dead:
            self._fh.flush()
            if self.fsync != "never":
                os.fsync(self._fh.fileno())
            self._fh.close()
        elif self._fh is not None:
            try:
                self._fh.close()
            except OSError:  # pragma: no cover
                pass
        self._fh = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.directory!r}, last_lsn={self.last_lsn}, "
            f"segments={len(self._segments)}, fsync='{self.fsync}')"
        )
