"""Prefix-consistent tailing reads over a live write-ahead log.

:class:`WALCursor` is an independent, read-only follower of a WAL
directory that some other component (the serving runtime's
:class:`~repro.serve.StateCommitter`) is actively appending to.  It is
the transport of the serve→train loop: the continual learner polls the
cursor for newly *committed* event batches and never touches the
writer's file handles or in-memory state.

Guarantees (tested in ``tests/test_durable.py``):

* **Prefix consistency.**  :meth:`poll` only ever delivers records from
  the committed prefix as defined by :func:`repro.durable.wal.parse_segment`
  — the same definition the owning log uses for recovery.  A torn frame,
  CRC failure, or LSN hole stops the scan; nothing at or past the damage
  is delivered, and the next poll retries from the cursor position.
* **Monotonic, gap-free delivery.**  Records are delivered exactly once,
  in strictly increasing LSN order, with no holes (a hole would mean the
  cursor skipped a committed record).
* **Abort visibility.**  The newest committed record is *held back*
  (unless ``final=True``): the serving commit path logs a batch *before*
  validating it and logs the compensating ``KIND_ABORT`` immediately
  after a validation failure, so once a record's successor exists its
  abort — if any — is on disk.  One record of lag therefore suffices for
  the cursor to filter aborted batches before the learner trains on
  them.  ``KIND_ABORT`` records themselves are consumed as filters, not
  delivered.
* **Restartability.**  Cursor position is persisted (atomic tmp + rename
  + directory fsync) to ``cursor-<name>.json`` in the log directory; a
  restarted reader resumes exactly after the last delivered record.
* **Timeline-change detection.**  A reader can observe flushed bytes
  that were never fsynced; if the writer then crashes with a lost fsync,
  those LSNs are reissued with different content on restart.  The cursor
  stores the CRC of its last delivered record and re-verifies it against
  the log every poll — a mismatch (or the record vanishing entirely)
  raises :class:`CursorInvalidated` instead of silently delivering a
  forked history.  :meth:`reset` rewinds for redelivery after the caller
  has discarded derived state.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from .codec import KIND_ABORT, KIND_BATCH, CodecError, decode_payload
from .store import DurableRecord
from .wal import fsync_dir, list_segment_files, parse_segment, read_segment_bytes

__all__ = ["CursorInvalidated", "WALCursor", "read_batch_suffix"]


def read_batch_suffix(
    directory: str, after_seq: int, inject: bool = False
) -> List[DurableRecord]:
    """One-shot catch-up read: committed batch records past *after_seq*.

    Used by replica-group promotion as the WAL-backstop for follower
    catch-up — a newly promoted primary reads the fenced ex-primary's log
    directory and replays any ``KIND_BATCH`` record whose commit sequence
    (``meta['seq']``) it has not yet applied.  Pure read over the
    committed prefix (same :func:`parse_segment` definition the owner
    uses); aborted records are filtered, delivery is in seq order, and
    records without a seq are skipped.  Unlike :class:`WALCursor` this
    keeps no persistent position — the caller's own ``last_seq`` is the
    cursor.
    """
    records: List[Tuple[int, bytes, int]] = []
    prev: Optional[int] = None
    for _, path in list_segment_files(directory):
        try:
            buf = read_segment_bytes(path, inject)
        except OSError:
            break
        segment_records, _, intact, last = parse_segment(buf, prev)
        records.extend(segment_records)
        if not intact:
            break
        prev = last if last is not None else prev
    aborted = set()
    decoded: List[DurableRecord] = []
    for lsn, payload, _ in records:
        try:
            kind, meta, arrays = decode_payload(payload)
        except CodecError:
            break  # committed prefix ends just before the damage
        if kind == KIND_ABORT:
            aborted.add(int(meta.get("target", -1)))
            continue
        decoded.append(DurableRecord(lsn=lsn, kind=kind, meta=meta, arrays=arrays))
    out = [
        r
        for r in decoded
        if r.lsn not in aborted
        and r.kind == KIND_BATCH
        and int(r.meta.get("seq", -1)) > int(after_seq)
    ]
    out.sort(key=lambda r: int(r.meta["seq"]))
    return out


class CursorInvalidated(RuntimeError):
    """The log's history diverged from what this cursor already delivered.

    Raised when the record at the cursor's position disappeared or
    changed content (LSN reuse after a lost-fsync crash), or when
    compaction deleted segments past the cursor.  The reader must
    discard state derived from undelivered records and :meth:`reset`.
    """


class WALCursor:
    """Persistent, restartable tailing cursor over a WAL directory.

    Args:
        directory: the log directory some :class:`WriteAheadLog` owns.
        name: distinguishes multiple independent cursors on one log;
            state lives in ``cursor-<name>.json``.
        inject: route reads through the ``disk.read`` fault site (same
            as owner-side replay) so injected read corruption is subject
            to the prefix-consistency guarantee, not hidden from it.
    """

    def __init__(self, directory: str, name: str = "tail", inject: bool = True):
        self.directory = os.path.abspath(directory)
        self.name = str(name)
        self.inject = bool(inject)
        self.state_path = os.path.join(self.directory, f"cursor-{self.name}.json")
        #: LSN of the last record delivered to the caller (0 = none yet).
        self.last_lsn = 0
        #: frame CRC of that record, for timeline-change detection.
        self.last_crc: Optional[int] = None
        self.delivered = 0
        self.polls = 0
        self._load_state()

    # ---- persistent state --------------------------------------------------------

    def _load_state(self) -> None:
        try:
            with open(self.state_path, "r", encoding="utf-8") as fh:
                state = json.load(fh)
        except FileNotFoundError:
            return
        except (OSError, json.JSONDecodeError):
            # A torn cursor file only costs redelivery, never correctness:
            # fall back to the log's beginning.
            return
        self.last_lsn = int(state.get("last_lsn", 0))
        crc = state.get("last_crc")
        self.last_crc = int(crc) if crc is not None else None
        self.delivered = int(state.get("delivered", 0))

    def _save_state(self) -> None:
        tmp = self.state_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "name": self.name,
                    "last_lsn": int(self.last_lsn),
                    "last_crc": self.last_crc,
                    "delivered": int(self.delivered),
                },
                fh,
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.state_path)
        fsync_dir(self.directory)

    # ---- scanning ----------------------------------------------------------------

    def _scan(self) -> List[Tuple[int, bytes, int]]:
        """Parse the committed prefix of all live segments.

        Mirrors :meth:`WriteAheadLog.replay`: segments in sequence order,
        LSN continuity threaded across boundaries, scan stopped at the
        first non-intact segment.
        """
        records: List[Tuple[int, bytes, int]] = []
        prev: Optional[int] = None
        for _, path in list_segment_files(self.directory):
            try:
                buf = read_segment_bytes(path, self.inject)
            except OSError:
                break  # segment vanished mid-scan (compaction race)
            segment_records, _, intact, last = parse_segment(buf, prev)
            records.extend(segment_records)
            if not intact:
                break
            prev = last if last is not None else prev
        return records

    def _check_timeline(self, records: List[Tuple[int, bytes, int]]) -> None:
        if self.last_lsn == 0:
            return
        by_lsn = {lsn: crc for lsn, _, crc in records}
        crc = by_lsn.get(self.last_lsn)
        if crc is None:
            if records and records[0][0] > self.last_lsn:
                # Compaction deleted the cursor's segment: position still
                # meaningful but history before the remaining log is gone.
                raise CursorInvalidated(
                    f"log compacted past cursor {self.name!r}: first live "
                    f"record is lsn {records[0][0]}, cursor at {self.last_lsn}"
                )
            raise CursorInvalidated(
                f"record lsn {self.last_lsn} delivered by cursor "
                f"{self.name!r} no longer exists (lost-fsync timeline change)"
            )
        if self.last_crc is not None and crc != self.last_crc:
            raise CursorInvalidated(
                f"record lsn {self.last_lsn} changed content under cursor "
                f"{self.name!r} (crc {crc:#x} != {self.last_crc:#x}): the "
                "log restarted on a divergent timeline"
            )

    # ---- polling -----------------------------------------------------------------

    def poll(self, final: bool = False) -> List[DurableRecord]:
        """Deliver newly committed records past the cursor, advancing it.

        The newest committed record is held back so a trailing
        ``KIND_ABORT`` can still veto it; pass ``final=True`` once the
        writer has stopped to drain that last record too.  Raises
        :class:`CursorInvalidated` on history divergence (see class doc).
        """
        self.polls += 1
        records = self._scan()
        self._check_timeline(records)
        fresh = [r for r in records if r[0] > self.last_lsn]
        if not fresh:
            return []
        # Aborts are scanned over *everything* parsed — including the
        # held-back tail — so an abort that is itself the newest record
        # still vetoes its (deliverable) target.
        aborted = set()
        decoded: Dict[int, Tuple[int, Dict, Dict]] = {}
        deliver_end = fresh[-1][0] if final else fresh[-1][0] - 1
        for lsn, payload, _ in fresh:
            try:
                kind, meta, arrays = decode_payload(payload)
            except CodecError:
                # Framing CRC passed but the payload is junk: treat the
                # damage like any other corruption — stop the committed
                # prefix just before it.
                deliver_end = min(deliver_end, lsn - 1)
                break
            decoded[lsn] = (kind, meta, arrays)
            if kind == KIND_ABORT:
                aborted.add(int(meta.get("target", -1)))
        out: List[DurableRecord] = []
        advanced_to: Optional[Tuple[int, int]] = None
        for lsn, _, crc in fresh:
            if lsn > deliver_end or lsn not in decoded:
                break
            kind, meta, arrays = decoded[lsn]
            advanced_to = (lsn, crc)
            if kind == KIND_ABORT or lsn in aborted:
                continue
            out.append(DurableRecord(lsn=lsn, kind=kind, meta=meta, arrays=arrays))
        if advanced_to is not None:
            self.last_lsn, self.last_crc = advanced_to
            self.delivered += len(out)
            self._save_state()
        return out

    def reset(self, to_lsn: int = 0) -> None:
        """Rewind to *to_lsn* (0 = log start), forgetting delivery history.

        The next :meth:`poll` redelivers everything past *to_lsn*; the
        caller owns deduplication of anything it already consumed.
        """
        self.last_lsn = int(to_lsn)
        self.last_crc = None
        self._save_state()

    def position(self) -> Dict:
        """Cursor position and counters (for stats / debugging)."""
        return {
            "name": self.name,
            "last_lsn": self.last_lsn,
            "delivered": self.delivered,
            "polls": self.polls,
        }

    def __repr__(self) -> str:
        return (
            f"WALCursor({self.directory!r}, name={self.name!r}, "
            f"last_lsn={self.last_lsn}, delivered={self.delivered})"
        )
