"""Binary codec for durable-log records.

A record payload is a ``(kind, meta, arrays)`` triple — a small integer
record kind, a JSON-able metadata dict, and a named dict of numpy arrays
— serialized to a self-describing byte string.  The encoding is
deliberately boring: little-endian length-prefixed fields, no
compression, no pickling (a corrupted pickle can execute code; a
corrupted array blob just fails its CRC).

Layout::

    u8   kind
    u32  len(meta_json)      meta_json (utf-8)
    u16  n_arrays
    per array:
        u16  len(name)       name (utf-8)
        u16  len(dtype_str)  dtype_str (numpy ``dtype.str``, e.g. '<f4')
        u8   ndim            ndim x u64 shape
        u64  len(raw)        raw bytes (C-contiguous)

Integrity is the framing layer's job (per-record CRC32 in the WAL,
whole-file CRC in snapshots); the codec only has to fail *cleanly* on
garbage, which the length-prefixed layout guarantees — every decode
checks bounds before slicing and raises :class:`CodecError`.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Tuple

import numpy as np

__all__ = [
    "CodecError",
    "KIND_BATCH",
    "KIND_ABORT",
    "KIND_MARKER",
    "KIND_DELTA",
    "KIND_SNAPSHOT",
    "encode_payload",
    "decode_payload",
]

#: record kinds (u8); the WAL/stores attach semantics, the codec does not.
KIND_BATCH = 1  #: a committed EventBatch delta (serve path)
KIND_ABORT = 2  #: a logged batch was rolled back; replay must skip it
KIND_MARKER = 3  #: control marker (checkpoint / rollback / custom)
KIND_DELTA = 4  #: incremental training-state delta between checkpoints
KIND_SNAPSHOT = 5  #: full state image (snapshot files only)


class CodecError(ValueError):
    """Payload bytes do not decode to a well-formed record."""


def encode_payload(kind: int, meta: Dict, arrays: Dict[str, np.ndarray]) -> bytes:
    """Serialize ``(kind, meta, arrays)`` to bytes (see module layout)."""
    if not 0 <= int(kind) <= 0xFF:
        raise ValueError(f"record kind must fit a u8, got {kind}")
    meta_json = json.dumps(meta or {}, sort_keys=True).encode()
    parts = [struct.pack("<BI", int(kind), len(meta_json)), meta_json,
             struct.pack("<H", len(arrays))]
    for name in sorted(arrays):
        value = np.asarray(arrays[name])
        if not value.flags["C_CONTIGUOUS"]:
            # (ascontiguousarray unconditionally promotes 0-d to 1-d,
            # so only call it when actually needed)
            value = np.ascontiguousarray(value)
        name_b = name.encode()
        dtype_b = value.dtype.str.encode()
        raw = value.tobytes()
        parts.append(struct.pack("<H", len(name_b)))
        parts.append(name_b)
        parts.append(struct.pack("<H", len(dtype_b)))
        parts.append(dtype_b)
        parts.append(struct.pack("<B", value.ndim))
        parts.append(struct.pack(f"<{value.ndim}Q", *value.shape))
        parts.append(struct.pack("<Q", len(raw)))
        parts.append(raw)
    return b"".join(parts)


class _Reader:
    """Bounds-checked cursor over a payload buffer."""

    def __init__(self, buf: bytes):
        self.buf = buf
        self.pos = 0

    def take(self, n: int) -> bytes:
        if n < 0 or self.pos + n > len(self.buf):
            raise CodecError(
                f"truncated payload: need {n} bytes at offset {self.pos}, "
                f"have {len(self.buf) - self.pos}"
            )
        out = self.buf[self.pos : self.pos + n]
        self.pos += n
        return out

    def unpack(self, fmt: str):
        return struct.unpack(fmt, self.take(struct.calcsize(fmt)))


def decode_payload(buf: bytes) -> Tuple[int, Dict, Dict[str, np.ndarray]]:
    """Inverse of :func:`encode_payload`; raises :class:`CodecError` on junk."""
    r = _Reader(bytes(buf))
    kind, meta_len = r.unpack("<BI")
    try:
        meta = json.loads(r.take(meta_len).decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"payload metadata is not valid JSON ({exc})") from exc
    (n_arrays,) = r.unpack("<H")
    arrays: Dict[str, np.ndarray] = {}
    for _ in range(n_arrays):
        (name_len,) = r.unpack("<H")
        name = r.take(name_len).decode()
        (dtype_len,) = r.unpack("<H")
        dtype_str = r.take(dtype_len).decode()
        try:
            dtype = np.dtype(dtype_str)
        except TypeError as exc:
            raise CodecError(f"bad dtype {dtype_str!r} for array {name!r}") from exc
        (ndim,) = r.unpack("<B")
        shape = r.unpack(f"<{ndim}Q")
        (nbytes,) = r.unpack("<Q")
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize if ndim else dtype.itemsize
        if ndim == 0:
            expected = dtype.itemsize
        if nbytes != expected:
            raise CodecError(
                f"array {name!r}: {nbytes} raw bytes inconsistent with "
                f"shape {shape} of {dtype_str}"
            )
        raw = r.take(nbytes)
        arrays[name] = np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    if r.pos != len(r.buf):
        raise CodecError(f"{len(r.buf) - r.pos} trailing bytes after payload")
    return kind, meta, arrays
