"""Crash-consistent durable state layer.

Both runtimes previously lost everything between whole-file checkpoints
on a process crash.  This package closes that gap with an incremental,
crash-consistent persistence stack:

* :mod:`~repro.durable.codec` — self-describing binary payloads
  (``(kind, meta, arrays)``) with clean failure on garbage;
* :mod:`~repro.durable.wal` — the append-only write-ahead log:
  length-prefixed CRC32 record framing, segment rotation, group-commit
  fsync policies, torn-tail repair, and the ``disk.write`` /
  ``disk.fsync`` / ``disk.read`` fault-injection sites;
* :mod:`~repro.durable.snapshot` — atomic CRC-verified snapshot files
  anchoring log compaction;
* :mod:`~repro.durable.store` — :class:`DurableStateStore`, the
  WAL-then-apply commit protocol plus snapshot + log-replay recovery.

The tested guarantee (``tests/test_durable.py``): for a crash injected
at **any byte offset** of the log — torn write, truncation, bit flip,
duplicated tail record, lost fsync — recovery yields state bit-identical
to a clean replay of the committed prefix, no committed record is lost
or applied twice, and re-opening the store is idempotent.

Consumers: the serving path logs each released ``EventBatch`` before
applying it (:class:`repro.serve.StateCommitter`), and the training path
logs incremental per-batch deltas between full checkpoints
(:class:`repro.bench.ResilientTrainer` with ``delta_log=True``).
"""

from .codec import (
    KIND_ABORT,
    KIND_BATCH,
    KIND_DELTA,
    KIND_MARKER,
    KIND_SNAPSHOT,
    CodecError,
    decode_payload,
    encode_payload,
)
from .snapshot import list_snapshots, load_latest, prune_snapshots, write_snapshot
from .store import DurableRecord, DurableStateStore, RecoveredState
from .tail import CursorInvalidated, WALCursor, read_batch_suffix
from .wal import (
    WALStats,
    WriteAheadLog,
    decode_shipped_record,
    encode_shipped_record,
    fsync_dir,
)

__all__ = [
    "CodecError",
    "KIND_ABORT",
    "KIND_BATCH",
    "KIND_DELTA",
    "KIND_MARKER",
    "KIND_SNAPSHOT",
    "encode_payload",
    "decode_payload",
    "WALStats",
    "WriteAheadLog",
    "fsync_dir",
    "write_snapshot",
    "load_latest",
    "list_snapshots",
    "prune_snapshots",
    "DurableRecord",
    "DurableStateStore",
    "RecoveredState",
    "CursorInvalidated",
    "WALCursor",
    "read_batch_suffix",
    "encode_shipped_record",
    "decode_shipped_record",
]
