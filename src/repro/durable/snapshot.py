"""Atomic, CRC-verified state snapshots anchoring log compaction.

A snapshot is a full image of the durable state at a known log position:
``state(snapshot at lsn L) + replay(records with lsn > L)`` must equal
``replay(all records)``.  Once a snapshot is durable, every sealed log
segment below its LSN is garbage and can be compacted away.

File format (``snap-<lsn>.snap``)::

    12 bytes  magic "TGLITESNP001"
    u32       version
    u64       lsn
    u32       crc32(payload)
    u64       len(payload)
    ...       payload (codec-encoded KIND_SNAPSHOT record)

Writes are atomic: staged at ``path + ".tmp"``, fsynced, renamed into
place, and the directory is fsynced so the rename itself survives a
crash.  :func:`load_latest` walks snapshots newest-first and returns the
first one that passes its CRC — a torn or bit-flipped newest snapshot
falls back to the previous one instead of poisoning recovery.
"""

from __future__ import annotations

import os
import re
import struct
import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from .codec import KIND_SNAPSHOT, CodecError, decode_payload, encode_payload
from .wal import fsync_dir

__all__ = ["write_snapshot", "load_latest", "list_snapshots", "prune_snapshots"]

_MAGIC = b"TGLITESNP001"
_VERSION = 1
_HEAD = struct.Struct("<12sIQIQ")  # magic, version, lsn, crc, payload length
_SNAP_RE = re.compile(r"^snap-(\d{12})\.snap$")


def _snap_path(directory: str, lsn: int) -> str:
    return os.path.join(directory, f"snap-{lsn:012d}.snap")


def write_snapshot(
    directory: str,
    lsn: int,
    meta: Dict,
    arrays: Dict[str, np.ndarray],
) -> str:
    """Atomically persist a snapshot of *arrays* taken at log position *lsn*."""
    os.makedirs(directory, exist_ok=True)
    payload = encode_payload(KIND_SNAPSHOT, meta, arrays)
    head = _HEAD.pack(
        _MAGIC, _VERSION, int(lsn), zlib.crc32(payload) & 0xFFFFFFFF, len(payload)
    )
    path = _snap_path(directory, lsn)
    tmp = path + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(head)
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_dir(directory)
    except BaseException:
        if os.path.exists(tmp):
            os.remove(tmp)
        raise
    return path


def _read_snapshot(path: str) -> Optional[Tuple[int, Dict, Dict[str, np.ndarray]]]:
    """Decode one snapshot file; None when torn/corrupt (any reason)."""
    try:
        with open(path, "rb") as fh:
            buf = fh.read()
    except OSError:
        return None
    if len(buf) < _HEAD.size:
        return None
    magic, version, lsn, crc, length = _HEAD.unpack_from(buf)
    if magic != _MAGIC or version != _VERSION:
        return None
    payload = buf[_HEAD.size : _HEAD.size + length]
    if len(payload) != length or zlib.crc32(payload) & 0xFFFFFFFF != crc:
        return None
    try:
        kind, meta, arrays = decode_payload(payload)
    except CodecError:
        return None
    if kind != KIND_SNAPSHOT:
        return None
    return int(lsn), meta, arrays


def list_snapshots(directory: str) -> List[Tuple[int, str]]:
    """All snapshot files as ``(lsn, path)``, oldest first."""
    if not os.path.isdir(directory):
        return []
    out = []
    for name in os.listdir(directory):
        m = _SNAP_RE.match(name)
        if m:
            out.append((int(m.group(1)), os.path.join(directory, name)))
    return sorted(out)


def load_latest(directory: str) -> Optional[Tuple[int, Dict, Dict[str, np.ndarray]]]:
    """Newest snapshot that passes integrity checks, or None.

    Corrupt snapshots are skipped (recovery falls back to an older one
    plus a longer log replay), never partially loaded.
    """
    for lsn, path in reversed(list_snapshots(directory)):
        loaded = _read_snapshot(path)
        if loaded is not None:
            return loaded
    return None


def prune_snapshots(directory: str, keep: int = 2) -> int:
    """Delete all but the newest *keep* snapshots; returns removals."""
    if keep < 1:
        raise ValueError("keep must be >= 1")
    snaps = list_snapshots(directory)
    removed = 0
    for _, path in snaps[:-keep]:
        os.remove(path)
        removed += 1
    if removed:
        fsync_dir(directory)
    return removed
