"""Per-operation cost breakdown of a TGAT training epoch (Figure 7).

Re-drives the TGAT forward/backward pipeline step by step — using the
model's own sampler, operators, and layers — so each stage can be timed
under its own section: batch preparation, temporal sampling, data loading,
time encoding (zero-delta and neighbor-delta separately), attention,
prediction/loss, backward, and the optimizer step.

The TGL variant mirrors its structural differences: sampling *includes*
the fused delta computation (so TGL has no separate delta step), and data
loading is the eager pageable MFG gather.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core import iter_batches
from ..core import op as tgop
from ..store import ops as store_ops
from ..models.attention import TemporalAttnLayer
from ..models.tgat import TGAT
from ..nn import bce_with_logits
from ..tensor import Tensor
from ..tgl.models.tgat import TGLTGAT
from .experiments import Experiment
from .timing import Breakdown
from .trainer import _mark_time_encoders_updated

__all__ = ["run_tgat_breakdown"]


def _timed_time_encoders(breakdown: Breakdown):
    """Context patching TemporalAttnLayer's time-feature helpers."""
    orig_zero = TemporalAttnLayer._zero_time
    orig_nbr = TemporalAttnLayer._nbr_time

    def zero(self, n):
        with breakdown.section("time_zero"):
            return orig_zero(self, n)

    def nbr(self, deltas):
        with breakdown.section("time_nbrs"):
            return orig_nbr(self, deltas)

    class _Patch:
        def __enter__(self):
            TemporalAttnLayer._zero_time = zero
            TemporalAttnLayer._nbr_time = nbr

        def __exit__(self, *exc):
            TemporalAttnLayer._zero_time = orig_zero
            TemporalAttnLayer._nbr_time = orig_nbr

    return _Patch()


def _loss(model, embeds, batch):
    pos, neg = model.edge_predictor.score_batch(embeds, len(batch))
    loss = bce_with_logits(pos, Tensor(np.ones(len(batch), dtype=np.float32), device=pos.device))
    return loss + bce_with_logits(neg, Tensor(np.zeros(len(batch), dtype=np.float32), device=neg.device))


def _tglite_epoch(exp: Experiment, stop: int, bd: Breakdown) -> None:
    model: TGAT = exp.model
    cfg = exp.cfg
    exp.neg_sampler.reset()
    with _timed_time_encoders(bd):
        for batch in iter_batches(exp.g, cfg.batch_size, stop=stop):
            with bd.section("batch_prep"):
                batch.neg_nodes = exp.neg_sampler.sample(len(batch))
                exp.optimizer.zero_grad()
                head = batch.block(exp.ctx)
            tail = head
            for i in range(model.num_layers):
                if i > 0:
                    with bd.section("batch_prep"):
                        tail = tail.next_block()
                with bd.section("batch_prep"):
                    if model.opt.dedup:
                        tail = tgop.dedup(tail)
                    if model.opt.cache:
                        tail = store_ops.memoize(exp.ctx, tail)
                with bd.section("sample"):
                    tail = model.sampler.sample(tail)
            with bd.section("data_load"):
                if model.opt.preload:
                    store_ops.preload(head, use_pin=model.opt.pin_memory)
                tail.dstdata["h"] = tail.dstfeat()
                tail.srcdata["h"] = tail.srcfeat()
            with bd.section("attention"):
                embeds = tgop.aggregate(head, list(model.attn_layers), key="h")
            with bd.section("pred_loss"):
                loss = _loss(model, embeds, batch)
            with bd.section("backward"):
                loss.backward()
            with bd.section("opt_step"):
                exp.optimizer.step()
                _mark_time_encoders_updated(model)


def _tgl_epoch(exp: Experiment, stop: int, bd: Breakdown) -> None:
    model: TGLTGAT = exp.model
    cfg = exp.cfg
    exp.neg_sampler.reset()
    for batch in iter_batches(exp.g, cfg.batch_size, stop=stop):
        with bd.section("batch_prep"):
            batch.neg_nodes = exp.neg_sampler.sample(len(batch))
            exp.optimizer.zero_grad()
            nodes, times = batch.nodes(), batch.times()
        with bd.section("sample"):  # fused: deltas computed here (MFG ctor)
            mfgs = model.sampler.sample(model.device, nodes, times, model.num_layers)
        with bd.section("data_load"):
            mfgs[0].load("h", exp.g.nfeat, which="all")
            if exp.g.efeat is not None:
                for mfg in mfgs:
                    mfg.load_edges("f", exp.g.efeat)
        with bd.section("attention"):  # includes in-layer time encoding
            h = None
            for i, mfg in enumerate(mfgs):
                h = model.layers[i](mfg)
                if i + 1 < len(mfgs):
                    mfgs[i + 1].srcdata["h"] = h
        with bd.section("pred_loss"):
            loss = _loss(model, h, batch)
        with bd.section("backward"):
            loss.backward()
        with bd.section("opt_step"):
            exp.optimizer.step()
            _mark_time_encoders_updated(model)


def run_tgat_breakdown(cfg, slice_edges: int = 4000) -> Dict[str, float]:
    """Run one instrumented TGAT epoch-slice; returns seconds per stage.

    For TGLite settings, the ``attention`` stage is reported *exclusive* of
    the nested time-encoding sections (which are listed separately), while
    TGL's fused design folds neighbor-delta work into ``sample``/
    ``attention`` — reproducing the structural difference §5.2.3 discusses.
    """
    if cfg.model != "tgat":
        raise ValueError("the Figure 7 breakdown is defined for TGAT")
    exp = Experiment(cfg)
    try:
        bd = Breakdown()
        stop = min(exp.train_end, slice_edges)
        if exp.ctx is not None:
            exp.ctx.reset_stats()
        if cfg.framework == "tgl":
            _tgl_epoch(exp, stop, bd)
        else:
            _tglite_epoch(exp, stop, bd)
        if exp.ctx is not None:
            # Kernel-level timings recorded by the vectorized kernel layer
            # (repro.core.kernels); nested inside the coarse stages above.
            bd.merge(exp.ctx.stats().kernel_seconds, prefix="kernel:")
        totals = bd.totals()
        if "attention" in totals:
            nested = totals.get("time_zero", 0.0) + totals.get("time_nbrs", 0.0)
            totals["attention"] = max(totals["attention"] - nested, 0.0)
        return totals
    finally:
        exp.close()
