"""Entry point: ``python -m repro.bench`` (see :mod:`repro.bench.cli`)."""

import sys

from .cli import main

sys.exit(main())
