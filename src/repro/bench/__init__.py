"""Benchmark harness: trainer, metrics, timing, and experiment runner."""

from .checkpoint import checkpoint_arrays, load_checkpoint, save_checkpoint
from .metrics import accuracy, average_precision, roc_auc
from .node_classification import (
    NodeClassifier,
    collect_source_embeddings,
    train_node_classifier,
)
from .resilient import ResilienceEvent, ResilientResult, ResilientTrainer
from .timing import Breakdown, Timer
from .trainer import (
    EpochResult,
    TrainResult,
    evaluate,
    train,
    train_epoch,
    warm_replay,
)

__all__ = [
    "accuracy",
    "checkpoint_arrays",
    "load_checkpoint",
    "save_checkpoint",
    "average_precision",
    "roc_auc",
    "NodeClassifier",
    "collect_source_embeddings",
    "train_node_classifier",
    "ResilienceEvent",
    "ResilientResult",
    "ResilientTrainer",
    "Breakdown",
    "Timer",
    "EpochResult",
    "TrainResult",
    "evaluate",
    "train",
    "train_epoch",
    "warm_replay",
]
