"""Link-prediction training and inference harness.

Implements the experimental protocol of §5: chronological batches, one
negative per positive edge, BCE loss on edge logits, per-epoch wall-clock
timing, and average-precision scoring on the evaluation split.  The same
harness drives both the TGLite-based models and the TGL-baseline models —
any model exposing ``forward(batch) -> (pos_logits, neg_logits)`` and
``reset_state()`` works.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..core import TBatch, TGraph, iter_batches
from ..data import NegativeSampler
from ..nn import Optimizer, TimeEncode, bce_with_logits
from ..store.prefetch import BatchPipeline, attach_graph_sources
from ..tensor import Tensor, no_grad
from .metrics import average_precision
from .timing import Breakdown

__all__ = ["EpochResult", "TrainResult", "train_epoch", "evaluate", "train", "warm_replay"]


@dataclass
class EpochResult:
    """One epoch's timing and quality numbers."""

    epoch: int
    train_seconds: float
    train_loss: float
    eval_seconds: float = 0.0
    eval_ap: float = 0.0


@dataclass
class TrainResult:
    """Aggregated results of a training run."""

    epochs: List[EpochResult] = field(default_factory=list)

    @property
    def best_ap(self) -> float:
        return max((e.eval_ap for e in self.epochs), default=0.0)

    @property
    def mean_epoch_seconds(self) -> float:
        if not self.epochs:
            return 0.0
        return float(np.mean([e.train_seconds for e in self.epochs]))

    @property
    def last_epoch_seconds(self) -> float:
        return self.epochs[-1].train_seconds if self.epochs else 0.0


def _mark_time_encoders_updated(model) -> None:
    """Bump TimeEncode versions so precomputed tables invalidate."""
    for module in model.modules():
        if isinstance(module, TimeEncode):
            module.mark_updated()


def _batches(g, batch_size, start, stop, ctx):
    """Chronological batches, with store lookahead prefetch when opted in.

    Passing a context whose tiered store prefetches (``prefetch_depth >
    0``) wraps the stream in a :class:`~repro.store.prefetch.BatchPipeline`:
    the graph's feature/memory tables are registered as store sources and
    each batch's working set is fetched one batch ahead on the simulated
    clock (recovered stall lands in ``ctx.stats()`` under ``store:*``).
    With ``ctx=None`` this is exactly ``iter_batches``.
    """
    it = iter_batches(g, batch_size, start=start, stop=stop)
    store = getattr(ctx, "store", None) if ctx is not None else None
    if store is None or store.config.prefetch_depth <= 0:
        return it
    attach_graph_sources(store, g)
    return BatchPipeline(store, g).batches(it)


def train_epoch(
    model,
    g: TGraph,
    optimizer: Optimizer,
    neg_sampler: NegativeSampler,
    batch_size: int,
    start: int = 0,
    stop: Optional[int] = None,
    ctx=None,
) -> Tuple[float, float]:
    """Run one training epoch over edges ``[start, stop)``.

    Returns ``(elapsed_seconds, mean_loss)``.  ``ctx`` opts the epoch
    into store-driven batch prefetch (see :func:`_batches`).
    """
    model.train()
    neg_sampler.reset()
    losses = []
    t0 = time.perf_counter()
    for batch in _batches(g, batch_size, start, stop, ctx):
        batch.neg_nodes = neg_sampler.sample(len(batch))
        optimizer.zero_grad()
        pos, neg = model(batch)
        loss = bce_with_logits(pos, Tensor(np.ones(len(batch), dtype=np.float32), device=pos.device))
        loss = loss + bce_with_logits(neg, Tensor(np.zeros(len(batch), dtype=np.float32), device=neg.device))
        loss.backward()
        optimizer.step()
        _mark_time_encoders_updated(model)
        losses.append(loss.item())
    elapsed = time.perf_counter() - t0
    return elapsed, float(np.mean(losses)) if losses else 0.0


def evaluate(
    model,
    g: TGraph,
    neg_sampler: NegativeSampler,
    batch_size: int,
    start: int,
    stop: Optional[int] = None,
    ctx=None,
) -> Tuple[float, float]:
    """Score edges ``[start, stop)`` in inference mode.

    Returns ``(elapsed_seconds, average_precision)``.  Memory-based models
    still update their persistent state while evaluating (the standard
    streaming protocol), but no gradients flow.
    """
    model.eval()
    neg_sampler.reset()
    pos_scores: List[np.ndarray] = []
    neg_scores: List[np.ndarray] = []
    t0 = time.perf_counter()
    with no_grad():
        for batch in _batches(g, batch_size, start, stop, ctx):
            batch.neg_nodes = neg_sampler.sample(len(batch))
            pos, neg = model(batch)
            pos_scores.append(pos.data.copy())
            neg_scores.append(neg.data.copy())
    elapsed = time.perf_counter() - t0
    pos_all = np.concatenate(pos_scores) if pos_scores else np.empty(0)
    neg_all = np.concatenate(neg_scores) if neg_scores else np.empty(0)
    labels = np.concatenate([np.ones_like(pos_all), np.zeros_like(neg_all)])
    scores = np.concatenate([pos_all, neg_all])
    ap = average_precision(labels, scores) if len(scores) else 0.0
    return elapsed, ap


def warm_replay(model, g: TGraph, neg_sampler: NegativeSampler, batch_size: int, stop: int) -> None:
    """Replay edges ``[0, stop)`` in inference mode to warm memory/mailbox.

    Used before timing test-set inference for memory-based models, mirroring
    TGL's recreate-memory-before-inference behaviour noted in §5.3.
    """
    model.eval()
    model.reset_state()
    neg_sampler.reset()
    with no_grad():
        for batch in iter_batches(g, batch_size, start=0, stop=stop):
            batch.neg_nodes = neg_sampler.sample(len(batch))
            model(batch)


def train(
    model,
    g: TGraph,
    optimizer: Optimizer,
    neg_sampler: NegativeSampler,
    batch_size: int,
    epochs: int,
    train_end: int,
    eval_end: Optional[int] = None,
    ctx=None,
) -> TrainResult:
    """Full training loop: per epoch, reset state, train, then evaluate.

    Args:
        train_end: training edges are ``[0, train_end)``.
        eval_end: evaluation edges are ``[train_end, eval_end)``; omit to
            skip per-epoch evaluation.
        ctx: opts the run into store-driven batch prefetch
            (see :func:`_batches`).
    """
    result = TrainResult()
    for epoch in range(epochs):
        model.reset_state()
        train_s, loss = train_epoch(
            model, g, optimizer, neg_sampler, batch_size, start=0,
            stop=train_end, ctx=ctx,
        )
        eval_s, ap = (0.0, 0.0)
        if eval_end is not None and eval_end > train_end:
            eval_s, ap = evaluate(
                model, g, neg_sampler, batch_size, start=train_end,
                stop=eval_end, ctx=ctx,
            )
        result.epochs.append(EpochResult(epoch, train_s, loss, eval_s, ap))
    return result
