"""Evaluation metrics: average precision (AP) for link prediction.

The paper's accuracy numbers are average precision on the positive/negative
edge scores of the evaluation split.  This is a from-scratch implementation
(no sklearn in this environment) matching
``sklearn.metrics.average_precision_score`` semantics.
"""

from __future__ import annotations

import numpy as np

__all__ = ["average_precision", "accuracy", "roc_auc"]


def average_precision(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the precision-recall curve via the step-wise AP sum.

    Args:
        labels: binary ground-truth array.
        scores: predicted scores (higher = more positive).

    Returns AP in [0, 1].  Ties are handled by treating equal-score
    predictions as a single threshold group, matching sklearn.
    """
    labels = np.asarray(labels).astype(np.float64).reshape(-1)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same length")
    total_pos = labels.sum()
    if total_pos == 0:
        return 0.0
    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_labels = labels[order]
    tp = np.cumsum(sorted_labels)
    fp = np.cumsum(1.0 - sorted_labels)
    # Collapse tied scores: only the last index of each group is a valid
    # operating point.
    distinct = np.flatnonzero(np.diff(sorted_scores) != 0)
    thresholds = np.concatenate([distinct, [len(sorted_scores) - 1]])
    tp = tp[thresholds]
    fp = fp[thresholds]
    precision = tp / np.maximum(tp + fp, 1e-12)
    recall = tp / total_pos
    recall_prev = np.concatenate([[0.0], recall[:-1]])
    return float(np.sum((recall - recall_prev) * precision))


def roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) identity.

    Handles tied scores by assigning average ranks.  Returns 0.5 when a
    class is missing (the conventional degenerate value).
    """
    labels = np.asarray(labels).astype(bool).reshape(-1)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same length")
    n_pos = int(labels.sum())
    n_neg = len(labels) - n_pos
    if n_pos == 0 or n_neg == 0:
        return 0.5
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(len(scores), dtype=np.float64)
    sorted_scores = scores[order]
    # Average ranks within tie groups.
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum = ranks[labels].sum()
    return float((rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def accuracy(labels: np.ndarray, scores: np.ndarray, threshold: float = 0.0) -> float:
    """Fraction of predictions on the right side of *threshold*."""
    labels = np.asarray(labels).reshape(-1)
    preds = (np.asarray(scores).reshape(-1) > threshold).astype(labels.dtype)
    return float((preds == labels).mean()) if len(labels) else 0.0
