"""Fault-tolerant training runtime: retry, rollback, and degradation.

:class:`ResilientTrainer` wraps the §5 training protocol (same batch
stream, loss, and evaluation as :func:`repro.bench.trainer.train`) in a
recovery loop built on three mechanisms:

* **Retry** — a :class:`~repro.resilience.errors.TransientKernelError`
  raised mid-batch restores an in-RAM snapshot of everything the batch
  mutates before failing (node memory, mailbox, RNG streams) and reruns
  the batch, with capped exponential backoff.  Because the snapshot is
  bit-exact and injected faults are transient, the retried batch
  produces exactly the numbers the fault-free run would have.
* **Rollback** — a non-finite loss or parameter after the optimizer
  step (NaN gradients poison both parameters *and* optimizer moments,
  so retrying the batch cannot help) rolls the full training state back
  to the last on-disk checkpoint — parameters, memory, mailbox,
  optimizer moments, RNG streams, stream cursor — and replays forward.
* **Degradation** — repeated faults from one kernel site trip the
  context's degradation threshold; subsequent batches route through the
  uncached reference path for that site (bit-identical results, no
  further exposure to the faulting kernel), recorded in
  ``ctx.stats().degraded``.

Checkpoints are written every ``checkpoint_every`` batches through
:func:`repro.bench.checkpoint.save_checkpoint` (atomic, CRC-verified)
and carry the RNG + cursor state needed for bit-exact mid-epoch resume:
a training process hard-killed between checkpoints restarts with
``resume=True`` and continues on the same trajectory.  With
``delta_log=True`` the trainer additionally write-ahead logs a cheap
incremental delta after every successful batch (changed memory/mailbox
rows, parameters, optimizer moments, RNG words) into a
:class:`~repro.durable.store.DurableStateStore` under
``checkpoint_dir/wal``; resume then replays ``checkpoint + delta
suffix``, landing at the last durably completed batch instead of the
last full checkpoint — same bit-exact trajectory, far less recomputation.  State invariants
(:func:`repro.resilience.validate.validate_state`) are checked before
each checkpoint so corrupted state is never persisted — a violation
clears the derived caches and rolls back instead.

With ``num_replicas > 1`` batches run through
:class:`~repro.distributed.data_parallel.SimulatedDataParallel`;
crashed replicas (``worker.crash`` faults) have their shards
redistributed to the survivors, charging the simulated parallel clock
while leaving the synchronous-SGD numerics untouched.
"""

from __future__ import annotations

import copy
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import TBatch, TGraph
from ..data import NegativeSampler
from ..distributed import SimulatedDataParallel
from ..nn import Optimizer, bce_with_logits
from ..resilience import hooks
from ..resilience.errors import (
    CheckpointWriteAborted,
    DivergenceError,
    StateValidationError,
    TransientKernelError,
)
from ..resilience.validate import validate_state
from ..durable.codec import KIND_DELTA, KIND_MARKER
from ..tensor import Tensor
from ..tensor.random import default_generator
from .checkpoint import (
    _optimizer_state,
    _pack_generator,
    _restore_generator,
    _restore_optimizer,
    load_checkpoint,
    save_checkpoint,
)
from .trainer import EpochResult, TrainResult, _mark_time_encoders_updated, evaluate

__all__ = ["ResilienceEvent", "ResilientResult", "ResilientTrainer"]


@dataclass(frozen=True)
class ResilienceEvent:
    """One recovery action taken by the trainer.

    ``kind`` is one of: ``retry``, ``rollback``, ``checkpoint``,
    ``checkpoint-aborted``, ``validation``, ``degraded``,
    ``redistribution``, ``resume``.
    """

    kind: str
    epoch: int
    batch: int
    detail: str = ""


@dataclass
class ResilientResult(TrainResult):
    """Training results plus the recovery actions that produced them."""

    events: List[ResilienceEvent] = field(default_factory=list)
    #: simulated N-replica wall time (only accumulated when
    #: ``num_replicas > 1``); includes redistribution charges.
    simulated_parallel_seconds: float = 0.0

    def _count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    @property
    def retries(self) -> int:
        return self._count("retry")

    @property
    def rollbacks(self) -> int:
        return self._count("rollback")

    @property
    def checkpoints(self) -> int:
        return self._count("checkpoint")

    @property
    def redistributions(self) -> int:
        return self._count("redistribution")


class ResilientTrainer:
    """Checkpointing training loop that survives injected (or real) faults.

    Args:
        model: trainer-compatible model (``forward(batch)->(pos,neg)``,
            ``reset_state()``).
        g: the temporal graph (attached memory/mailbox is checkpointed).
        optimizer: optimizer over the model's parameters.
        neg_sampler: negative sampler; its RNG stream is checkpointed.
        batch_size: chronological batch size.
        checkpoint_dir: directory for the rolling checkpoint file.
        checkpoint_every: batches between checkpoints (a checkpoint is
            always taken at the start of each epoch).
        injector: optional :class:`~repro.resilience.FaultInjector` to
            install for the duration of ``train`` (one may instead be
            installed externally as a context manager).
        max_retries: transient-fault retries per batch before giving up;
            also caps repeated rollbacks triggered at one stream position.
        backoff_base: first retry's backoff sleep in seconds (0 disables
            sleeping; retry decisions stay deterministic either way).
        backoff_cap: upper bound on a single backoff sleep.
        num_replicas: >1 routes batches through simulated data-parallel
            execution (enables worker crash/straggler fault sites).
        interconnect_bandwidth: all-reduce cost model, forwarded to
            :class:`~repro.distributed.SimulatedDataParallel`.
        validate_on_checkpoint: run state-invariant validation before
            every checkpoint; violations veto the write and roll back.
        extra_generators: additional named RNG streams to checkpoint and
            snapshot (e.g. a model sampler's ``_rng`` under uniform
            neighbor sampling).
        delta_log: write-ahead log an incremental state delta after every
            successful batch (into ``checkpoint_dir/wal``) so resume
            replays ``checkpoint + delta suffix`` instead of recomputing
            the whole checkpoint interval.
        delta_fsync: WAL durability policy for the delta log
            (``'always'`` / ``'batch'`` / ``'never'``).
        ctx: opt-in store-driven batch prefetch: when the context's
            tiered store prefetches (``prefetch_depth > 0``), each
            batch's working set is gathered through the store and the
            next batch's set is prefetched behind it on the simulated
            clock.  A retried or rolled-back batch simply re-consumes
            rows that are already hot, so recovery stays bit-exact.
    """

    CHECKPOINT_NAME = "resilient.npz"

    def __init__(
        self,
        model,
        g: TGraph,
        optimizer: Optimizer,
        neg_sampler: NegativeSampler,
        batch_size: int,
        checkpoint_dir: str,
        checkpoint_every: int = 50,
        injector=None,
        max_retries: int = 3,
        backoff_base: float = 0.0,
        backoff_cap: float = 1.0,
        num_replicas: int = 1,
        interconnect_bandwidth: float = 1.0e9,
        validate_on_checkpoint: bool = True,
        extra_generators: Optional[Dict[str, np.random.Generator]] = None,
        delta_log: bool = False,
        delta_fsync: str = "always",
        ctx=None,
    ):
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.model = model
        self.g = g
        self.optimizer = optimizer
        self.neg_sampler = neg_sampler
        self.batch_size = batch_size
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.injector = injector
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.num_replicas = num_replicas
        self.validate_on_checkpoint = validate_on_checkpoint
        self.extra_generators = dict(extra_generators or {})
        self._dp = (
            SimulatedDataParallel(model, optimizer, num_replicas, interconnect_bandwidth)
            if num_replicas > 1
            else None
        )
        self.store = None
        if delta_log:
            from ..durable.store import DurableStateStore

            self.store = DurableStateStore(
                os.path.join(checkpoint_dir, "wal"), fsync=delta_fsync
            )
        self._pipeline = None
        fstore = getattr(ctx, "store", None) if ctx is not None else None
        if fstore is not None and fstore.config.prefetch_depth > 0:
            from ..store.prefetch import BatchPipeline, attach_graph_sources

            attach_graph_sources(fstore, g)
            self._pipeline = BatchPipeline(fstore, g)

    # ---- state plumbing ---------------------------------------------------------

    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.checkpoint_dir, self.CHECKPOINT_NAME)

    def _generators(self) -> Dict[str, np.random.Generator]:
        # Fetched lazily every time: manual_seed rebinds the global
        # generator and NegativeSampler.reset() rebuilds its stream.
        return {
            "global": default_generator(),
            "negative": self.neg_sampler._rng,
            **self.extra_generators,
        }

    def _snapshot(self) -> dict:
        """In-RAM copy of everything one batch mutates before the step."""
        snap = {
            "rng": {
                name: copy.deepcopy(gen.bit_generator.state)
                for name, gen in self._generators().items()
            }
        }
        if self.g.mem is not None:
            snap["mem"] = (self.g.mem.data.data.copy(), self.g.mem.time.copy())
        if self.g.mailbox is not None:
            mb = self.g.mailbox
            snap["mailbox"] = (
                mb.mail.data.copy(),
                mb.time.copy(),
                None if mb._next_slot is None else mb._next_slot.copy(),
            )
        return snap

    def _restore_snapshot(self, snap: dict) -> None:
        for name, gen in self._generators().items():
            gen.bit_generator.state = copy.deepcopy(snap["rng"][name])
        if "mem" in snap:
            self.g.mem.data.data[...] = snap["mem"][0]
            self.g.mem.time[...] = snap["mem"][1]
        if "mailbox" in snap:
            mb = self.g.mailbox
            mb.mail.data[...] = snap["mailbox"][0]
            mb.time[...] = snap["mailbox"][1]
            if mb._next_slot is not None:
                mb._next_slot[...] = snap["mailbox"][2]

    # ---- incremental delta log --------------------------------------------------

    def _build_delta(self, snap: dict) -> Dict[str, np.ndarray]:
        """Everything one completed batch changed, as a flat array dict.

        Memory/mailbox are diffed against the pre-batch snapshot (only
        the touched rows are logged); parameters, optimizer moments, and
        RNG words are small and logged whole.
        """
        arrays: Dict[str, np.ndarray] = {}
        for name, value in self.model.state_dict().items():
            arrays["model/" + name] = value
        for key, value in _optimizer_state(self.optimizer).items():
            arrays["optim/" + key] = value
        for name, gen in self._generators().items():
            arrays["rng/" + name] = _pack_generator(gen)
        if self.g.mem is not None and "mem" in snap:
            data, times = self.g.mem.data.data, self.g.mem.time
            changed = np.flatnonzero(
                (data != snap["mem"][0]).any(axis=1) | (times != snap["mem"][1])
            )
            arrays["mem/nodes"] = changed.astype(np.int64)
            arrays["mem/data"] = data[changed]
            arrays["mem/time"] = times[changed]
        if self.g.mailbox is not None and "mailbox" in snap:
            mb = self.g.mailbox
            n = mb.num_nodes
            changed = np.flatnonzero(
                (mb.mail.data.reshape(n, -1) != snap["mailbox"][0].reshape(n, -1)).any(axis=1)
                | (mb.time.reshape(n, -1) != snap["mailbox"][1].reshape(n, -1)).any(axis=1)
            )
            arrays["mail/nodes"] = changed.astype(np.int64)
            arrays["mail/mail"] = mb.mail.data[changed]
            arrays["mail/time"] = mb.time[changed]
            if mb._next_slot is not None:
                arrays["mail/cursor"] = mb._next_slot
        return arrays

    def _apply_delta(self, arrays: Dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`_build_delta`: write one delta in place."""
        model_state = {
            key[len("model/"):]: value
            for key, value in arrays.items()
            if key.startswith("model/")
        }
        if model_state:
            self.model.load_state_dict(model_state)
        _restore_optimizer(
            self.optimizer,
            {
                key[len("optim/"):]: value
                for key, value in arrays.items()
                if key.startswith("optim/")
            },
        )
        for name, gen in self._generators().items():
            key = "rng/" + name
            if key in arrays:
                _restore_generator(gen, arrays[key])
        if self.g.mem is not None and "mem/nodes" in arrays:
            idx = arrays["mem/nodes"]
            self.g.mem.data.data[idx] = arrays["mem/data"]
            self.g.mem.time[idx] = arrays["mem/time"]
        if self.g.mailbox is not None and "mail/nodes" in arrays:
            mb = self.g.mailbox
            idx = arrays["mail/nodes"]
            mb.mail.data[idx] = arrays["mail/mail"]
            mb.time[idx] = arrays["mail/time"]
            if mb._next_slot is not None and "mail/cursor" in arrays:
                mb._next_slot[...] = arrays["mail/cursor"]
        _mark_time_encoders_updated(self.model)

    def _replay_deltas(self, epoch: int, b: int, n_batches: int) -> Tuple[int, int, int]:
        """Fast-forward from the checkpoint cursor through logged deltas.

        Walks the committed log suffix: ``checkpoint`` markers discard
        deltas already folded into the on-disk checkpoint, ``rollback``
        markers discard deltas from abandoned timelines.  The surviving
        deltas are applied only while they form a contiguous run starting
        at the checkpoint cursor — a hole (lost fsync, torn tail) stops
        the fast-forward and the rest is recomputed.  The final batch of
        an epoch is always recomputed rather than replayed (the eval +
        epoch-rollover bookkeeping belongs to the live loop); either way
        the trajectory is bit-exact.
        """
        pending = []
        for rec in self.store.recover().records:
            if rec.kind == KIND_MARKER:
                name = rec.meta.get("name")
                if name == "checkpoint":
                    pending = []
                elif name == "rollback":
                    target = (int(rec.meta["epoch"]), int(rec.meta["batch"]))
                    pending = [
                        d for d in pending
                        if (int(d.meta["epoch"]), int(d.meta["batch"])) < target
                    ]
            elif rec.kind == KIND_DELTA:
                pending.append(rec)
        replayed = 0
        for rec in pending:
            pos = (int(rec.meta["epoch"]), int(rec.meta["batch"]))
            if pos < (epoch, b):
                continue  # already inside the checkpoint
            if pos != (epoch, b) or b >= n_batches - 1:
                break
            self._apply_delta(rec.arrays)
            b += 1
            replayed += 1
        return epoch, b, replayed

    def _clear_derived_caches(self) -> None:
        """Drop inference-only embed caches (derived state, never
        checkpointed) so corrupt or stale entries cannot survive —
        including rows demoted into the store's staging/cold tiers."""
        ctx = getattr(self.g, "ctx", None)
        if ctx is not None:
            ctx.clear_embed_cache()

    # ---- recovery actions -------------------------------------------------------

    def _write_checkpoint(self, result: ResilientResult, epoch: int, batch: int) -> str:
        """Validate + atomically persist; returns the outcome kind."""
        if self.validate_on_checkpoint:
            violations = validate_state(self.g)
            if violations:
                result.events.append(
                    ResilienceEvent("validation", epoch, batch, "; ".join(violations[:3]))
                )
                if not os.path.exists(self.checkpoint_path):
                    # Nothing to roll back to: the very first state of the
                    # run is already invalid, which is not recoverable.
                    raise StateValidationError(violations)
                return "validation"
        try:
            save_checkpoint(
                self.checkpoint_path,
                self.model,
                graph=self.g,
                optimizer=self.optimizer,
                generators=self._generators(),
                stream=(epoch, batch),
            )
        except CheckpointWriteAborted as exc:
            result.events.append(
                ResilienceEvent("checkpoint-aborted", epoch, batch, str(exc))
            )
            return "checkpoint-aborted"
        if self.store is not None:
            # Deltas below this marker are folded into the checkpoint:
            # replay ignores them and sealed log segments compact away.
            lsn = self.store.log_marker(
                "checkpoint", {"epoch": epoch, "batch": batch}
            )
            self.store.sync()
            self.store.compacted_segments += self.store.wal.compact_below(lsn)
        result.events.append(ResilienceEvent("checkpoint", epoch, batch))
        return "checkpoint"

    def _rollback(
        self, result: ResilientResult, epoch: int, batch: int, reason: str
    ) -> Tuple[int, int]:
        """Restore the last checkpoint; returns its stream cursor."""
        self._clear_derived_caches()
        meta = load_checkpoint(
            self.checkpoint_path,
            self.model,
            graph=self.g,
            optimizer=self.optimizer,
            generators=self._generators(),
        )
        _mark_time_encoders_updated(self.model)
        target = meta["stream"]
        if target is None:
            raise ValueError(
                f"checkpoint {self.checkpoint_path!r} carries no stream "
                "cursor; cannot roll back"
            )
        if self.store is not None:
            self.store.log_marker(
                "rollback", {"epoch": int(target[0]), "batch": int(target[1])}
            )
        result.events.append(
            ResilienceEvent(
                "rollback",
                epoch,
                batch,
                f"{reason}; replay from (epoch {target[0]}, batch {target[1]})",
            )
        )
        return target

    def _guard_divergence(self, loss_value: float) -> None:
        """Raise DivergenceError on non-finite loss or parameters."""
        bad = []
        if not np.isfinite(loss_value):
            bad.append(f"loss={loss_value}")
        for i, p in enumerate(self.model.parameters()):
            if not np.isfinite(p.data).all():
                bad.append(f"param[{i}] non-finite")
                break
        if bad:
            raise DivergenceError("divergence detected: " + ", ".join(bad))

    # ---- batch execution --------------------------------------------------------

    def _run_batch(self, result: ResilientResult, epoch: int, b: int,
                   lo: int, hi: int) -> float:
        """Forward/backward/step for one (freshly built) batch over edges
        ``[lo, hi)``."""
        batch = TBatch(self.g, lo, hi)
        if self._pipeline is not None:
            # Demand-gather this batch's working set (consuming any rows
            # a previous batch's lookahead already staged).
            self._pipeline.consume_batch(batch)
        if self._dp is not None:
            step = self._dp.train_step(batch, self.neg_sampler)
            result.simulated_parallel_seconds += step.simulated_parallel_seconds
            survivors = len(step.shards) - len(step.crashed_replicas)
            for replica in step.crashed_replicas:
                result.events.append(
                    ResilienceEvent(
                        "redistribution", epoch, b,
                        f"replica {replica} crashed; shard redistributed to "
                        f"{survivors} survivors",
                    )
                )
            loss_value = step.loss
        else:
            self.model.train()
            batch.neg_nodes = self.neg_sampler.sample(len(batch))
            self.optimizer.zero_grad()
            pos, neg = self.model(batch)
            loss = bce_with_logits(
                pos, Tensor(np.ones(len(batch), dtype=np.float32), device=pos.device)
            ) + bce_with_logits(
                neg, Tensor(np.zeros(len(batch), dtype=np.float32), device=neg.device)
            )
            loss.backward()
            self.optimizer.step()
            loss_value = loss.item()
        _mark_time_encoders_updated(self.model)
        self._guard_divergence(loss_value)
        if self._pipeline is not None:
            # Overlap: this batch's compute pays for the next one's
            # transfers.  Prefetching past train_end (into edges the
            # epoch never reaches) just leaves a few staged rows unused.
            self._pipeline.advance(batch)
            hi2 = min(hi + self.batch_size, self.g.num_edges)
            if hi < hi2:
                self._pipeline.prefetch_batch(TBatch(self.g, hi, hi2))
        return loss_value

    def _attempt_batch(self, result: ResilientResult, epoch: int, b: int,
                       lo: int, hi: int) -> Tuple[float, dict]:
        """Run one batch with snapshot-restore retries on transient faults.

        Returns ``(loss, snap)`` — the pre-batch snapshot doubles as the
        diff base for the incremental delta log.
        """
        snap = self._snapshot()
        ctx = getattr(self.g, "ctx", None)
        for attempt in range(self.max_retries + 1):
            try:
                return self._run_batch(result, epoch, b, lo, hi), snap
            except TransientKernelError as exc:
                self._restore_snapshot(snap)
                if ctx is not None and ctx.record_kernel_fault(exc.site):
                    result.events.append(
                        ResilienceEvent(
                            "degraded", epoch, b,
                            f"{exc.site} degraded to reference path after "
                            f"{ctx.degrade_threshold} faults",
                        )
                    )
                if attempt >= self.max_retries:
                    raise
                result.events.append(
                    ResilienceEvent("retry", epoch, b, f"{exc.site} (attempt {attempt + 1})")
                )
                if self.backoff_base > 0:
                    time.sleep(min(self.backoff_cap, self.backoff_base * 2**attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    def _evaluate_with_retry(
        self, result: ResilientResult, epoch: int, n_batches: int,
        train_end: int, eval_end: int,
    ) -> Tuple[float, float]:
        """Evaluation with whole-pass snapshot retry (eval mutates memory)."""
        snap = self._snapshot()
        for attempt in range(self.max_retries + 1):
            try:
                return evaluate(
                    self.model, self.g, self.neg_sampler, self.batch_size,
                    start=train_end, stop=eval_end,
                )
            except TransientKernelError as exc:
                self._restore_snapshot(snap)
                if attempt >= self.max_retries:
                    raise
                result.events.append(
                    ResilienceEvent(
                        "retry", epoch, n_batches,
                        f"{exc.site} during evaluation (attempt {attempt + 1})",
                    )
                )
        raise AssertionError("unreachable")  # pragma: no cover

    # ---- main loop --------------------------------------------------------------

    def train(
        self,
        epochs: int,
        train_end: int,
        eval_end: Optional[int] = None,
        resume: bool = False,
    ) -> ResilientResult:
        """Run the fault-tolerant training loop.

        Args:
            epochs: total epochs (an interrupted run resumed with
                ``resume=True`` still counts from epoch 0).
            train_end: training edges are ``[0, train_end)``.
            eval_end: per-epoch evaluation over ``[train_end, eval_end)``.
            resume: load ``checkpoint_path`` and continue bit-exactly
                from its stream cursor instead of starting fresh.
        """
        if train_end <= 0:
            raise ValueError("train_end must be positive")
        result = ResilientResult()
        n_batches = -(-train_end // self.batch_size)
        epoch, b = 0, 0
        # True when the state at the loop head was restored from a
        # checkpoint (resume or rollback): the checkpoint already holds
        # the post-reset epoch state, so the b==0 reset must be skipped.
        restored = False
        if resume:
            meta = load_checkpoint(
                self.checkpoint_path,
                self.model,
                graph=self.g,
                optimizer=self.optimizer,
                generators=self._generators(),
            )
            _mark_time_encoders_updated(self.model)
            self._clear_derived_caches()
            if meta["stream"] is None:
                raise ValueError(
                    f"checkpoint {self.checkpoint_path!r} carries no stream "
                    "cursor; cannot resume"
                )
            epoch, b = meta["stream"]
            restored = True
            detail = f"resumed from {self.checkpoint_path}"
            if self.store is not None:
                epoch, b, replayed = self._replay_deltas(epoch, b, n_batches)
                if replayed:
                    detail += f" + {replayed} logged deltas"
            result.events.append(ResilienceEvent("resume", epoch, b, detail))

        own_injector = self.injector is not None and hooks.active() is not self.injector
        if own_injector:
            hooks.install(self.injector)
        try:
            epoch_seconds = 0.0
            epoch_losses: Dict[int, float] = {}
            rollback_streak: Dict[Tuple[int, int], int] = {}
            while epoch < epochs:
                if b == 0 and not restored:
                    self.model.reset_state()
                    self.neg_sampler.reset()
                    epoch_seconds = 0.0
                    epoch_losses = {}
                restored = False
                injector = hooks.active()
                if injector is not None:
                    injector.advance(epoch, b)
                hooks.poke("trainer.batch", epoch=epoch, batch=b)
                if b % self.checkpoint_every == 0:
                    outcome = self._write_checkpoint(result, epoch, b)
                    if outcome == "validation":
                        # Corrupted state must never be trained on: the
                        # derived caches are dropped and the stream
                        # replays from the last good checkpoint (there is
                        # always one at the start of the current epoch).
                        epoch, b = self._rollback(result, epoch, b, "state validation failed")
                        epoch_losses = {k: v for k, v in epoch_losses.items() if k < b}
                        restored = True
                        continue
                t0 = time.perf_counter()
                lo = b * self.batch_size
                try:
                    loss_value, snap = self._attempt_batch(
                        result, epoch, b, lo, min(lo + self.batch_size, train_end)
                    )
                    epoch_losses[b] = loss_value
                    if self.store is not None:
                        self.store.log_delta(
                            self._build_delta(snap),
                            {"epoch": epoch, "batch": b, "loss": loss_value},
                        )
                except DivergenceError as exc:
                    key = (epoch, b)
                    rollback_streak[key] = rollback_streak.get(key, 0) + 1
                    if rollback_streak[key] > self.max_retries:
                        raise
                    epoch, b = self._rollback(result, epoch, b, str(exc))
                    # Replayed batches recompute their losses from the
                    # rollback target on; drop the abandoned entries.
                    epoch_losses = {k: v for k, v in epoch_losses.items() if k < b}
                    restored = True
                    continue
                epoch_seconds += time.perf_counter() - t0
                b += 1
                if b >= n_batches:
                    eval_s, ap = (0.0, 0.0)
                    if eval_end is not None and eval_end > train_end:
                        eval_s, ap = self._evaluate_with_retry(
                            result, epoch, n_batches, train_end, eval_end
                        )
                    mean_loss = (
                        float(np.mean(list(epoch_losses.values()))) if epoch_losses else 0.0
                    )
                    result.epochs.append(
                        EpochResult(epoch, epoch_seconds, mean_loss, eval_s, ap)
                    )
                    epoch += 1
                    b = 0
        finally:
            if self.store is not None:
                self.store.sync()
            if own_injector:
                hooks.uninstall(self.injector)
        return result

    # ---- incremental fine-tuning ------------------------------------------------

    def fine_tune(
        self,
        start: int,
        stop: int,
        passes: int = 1,
        graph: Optional[TGraph] = None,
    ) -> ResilientResult:
        """Incrementally train on the edge window ``[start, stop)``.

        The continual-learning entry point (:mod:`repro.scenarios.continual`):
        unlike :meth:`train` it never resets model state or the negative
        sampler — it *continues* the current trajectory on freshly
        arrived edges — and it accepts a replacement *graph* so a WAL
        tailer can grow the edge set between calls.  All of the
        resilience machinery still applies: transient faults retry under
        snapshot-restore, an anchor checkpoint is written at the window
        start (plus every ``checkpoint_every`` windows), and divergence
        rolls back to the last checkpoint with the same streak cap as
        :meth:`train`.

        Args:
            start: first edge index of the fine-tuning window.
            stop: one past the last edge index.
            passes: sweeps over the window (each a mini-epoch in the
                returned result's ``epochs`` list).
            graph: optionally replace ``self.g`` first (its edge arrays
                must contain ``[start, stop)``).

        Returns a :class:`ResilientResult` covering just this call.
        """
        if graph is not None:
            self.g = graph
        start, stop = int(start), int(stop)
        result = ResilientResult()
        if stop <= start or passes < 1:
            return result
        if stop > len(self.g.src):
            raise ValueError(
                f"fine-tune window [{start}, {stop}) exceeds the graph's "
                f"{len(self.g.src)} edges"
            )
        n_windows = -(-(stop - start) // self.batch_size)
        own_injector = (
            self.injector is not None and hooks.active() is not self.injector
        )
        if own_injector:
            hooks.install(self.injector)
        try:
            p, w = 0, 0
            losses: List[float] = []
            pass_seconds = 0.0
            rollback_streak: Dict[Tuple[int, int], int] = {}
            while p < passes:
                injector = hooks.active()
                if injector is not None:
                    injector.advance(p, w)
                hooks.poke("trainer.batch", epoch=p, batch=w)
                if w % self.checkpoint_every == 0:
                    outcome = self._write_checkpoint(result, p, w)
                    if outcome == "validation":
                        p, w = self._rollback(result, p, w, "state validation failed")
                        del losses[w:]
                        continue
                lo = start + w * self.batch_size
                hi = min(lo + self.batch_size, stop)
                t0 = time.perf_counter()
                try:
                    loss_value, snap = self._attempt_batch(result, p, w, lo, hi)
                    losses.append(loss_value)
                    if self.store is not None:
                        self.store.log_delta(
                            self._build_delta(snap),
                            {"epoch": p, "batch": w, "loss": loss_value},
                        )
                except DivergenceError as exc:
                    key = (p, w)
                    rollback_streak[key] = rollback_streak.get(key, 0) + 1
                    if rollback_streak[key] > self.max_retries:
                        raise
                    p, w = self._rollback(result, p, w, str(exc))
                    del losses[w:]
                    continue
                pass_seconds += time.perf_counter() - t0
                w += 1
                if w >= n_windows:
                    mean_loss = float(np.mean(losses)) if losses else 0.0
                    result.epochs.append(
                        EpochResult(p, pass_seconds, mean_loss, 0.0, 0.0)
                    )
                    losses = []
                    pass_seconds = 0.0
                    p += 1
                    w = 0
        finally:
            if self.store is not None:
                self.store.sync()
            if own_injector:
                hooks.uninstall(self.injector)
        return result

    def close(self) -> None:
        """Close the delta-log store (no-op without one)."""
        if self.store is not None:
            self.store.close()
