"""Checkpointing: save/restore full training state to a single ``.npz``.

Temporal models carry more state than parameters: resuming mid-stream
requires node memory, mailbox contents (and ring cursors), and optimizer
moments, or the replayed stream diverges.  ``save_checkpoint`` captures
all of it; ``load_checkpoint`` restores in place.
"""

from __future__ import annotations

import io
import os
from typing import Dict, Optional

import numpy as np

from ..nn import Adam, Module, Optimizer, SGD

__all__ = ["save_checkpoint", "load_checkpoint", "checkpoint_arrays"]

_PREFIX_MODEL = "model/"
_PREFIX_MEMORY = "memory/"
_PREFIX_MAILBOX = "mailbox/"
_PREFIX_OPTIM = "optim/"
_META = "meta/format_version"
_FORMAT_VERSION = 1


def _optimizer_state(optimizer: Optimizer) -> Dict[str, np.ndarray]:
    """Flatten optimizer moments, keyed by parameter position."""
    state: Dict[str, np.ndarray] = {}
    if isinstance(optimizer, Adam):
        state["t"] = np.array([optimizer._t], dtype=np.int64)
        for i, p in enumerate(optimizer.params):
            m = optimizer._m.get(id(p))
            v = optimizer._v.get(id(p))
            if m is not None:
                state[f"m/{i}"] = m
                state[f"v/{i}"] = v
    elif isinstance(optimizer, SGD):
        for i, p in enumerate(optimizer.params):
            vel = optimizer._velocity.get(id(p))
            if vel is not None:
                state[f"vel/{i}"] = vel
    return state


def _restore_optimizer(optimizer: Optimizer, state: Dict[str, np.ndarray]) -> None:
    if isinstance(optimizer, Adam):
        if "t" in state:
            optimizer._t = int(state["t"][0])
        for i, p in enumerate(optimizer.params):
            if f"m/{i}" in state:
                optimizer._m[id(p)] = state[f"m/{i}"].copy()
                optimizer._v[id(p)] = state[f"v/{i}"].copy()
    elif isinstance(optimizer, SGD):
        for i, p in enumerate(optimizer.params):
            if f"vel/{i}" in state:
                optimizer._velocity[id(p)] = state[f"vel/{i}"].copy()


def checkpoint_arrays(model: Module, graph=None, optimizer: Optional[Optimizer] = None) -> Dict[str, np.ndarray]:
    """Assemble the flat array dict a checkpoint stores."""
    arrays: Dict[str, np.ndarray] = {_META: np.array([_FORMAT_VERSION])}
    for name, value in model.state_dict().items():
        arrays[_PREFIX_MODEL + name] = value
    if graph is not None and graph.mem is not None:
        arrays[_PREFIX_MEMORY + "data"] = graph.mem.data.data.copy()
        arrays[_PREFIX_MEMORY + "time"] = graph.mem.time.copy()
    if graph is not None and graph.mailbox is not None:
        arrays[_PREFIX_MAILBOX + "mail"] = graph.mailbox.mail.data.copy()
        arrays[_PREFIX_MAILBOX + "time"] = graph.mailbox.time.copy()
        if graph.mailbox._next_slot is not None:
            arrays[_PREFIX_MAILBOX + "cursor"] = graph.mailbox._next_slot.copy()
    if optimizer is not None:
        for key, value in _optimizer_state(optimizer).items():
            arrays[_PREFIX_OPTIM + key] = value
    return arrays


def save_checkpoint(path: str, model: Module, graph=None, optimizer: Optional[Optimizer] = None) -> None:
    """Write model + memory/mailbox + optimizer state to *path* (.npz)."""
    arrays = checkpoint_arrays(model, graph=graph, optimizer=optimizer)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **arrays)


def load_checkpoint(path: str, model: Module, graph=None, optimizer: Optional[Optimizer] = None) -> None:
    """Restore state saved by :func:`save_checkpoint` (in place).

    Raises ``KeyError``/``ValueError`` on structural mismatches (missing
    parameters, wrong shapes), so silently loading the wrong checkpoint is
    not possible.
    """
    with np.load(path) as archive:
        arrays = {key: archive[key] for key in archive.files}
    version = int(arrays.pop(_META, np.array([0]))[0])
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint format version: {version}")
    model_state = {
        key[len(_PREFIX_MODEL):]: value
        for key, value in arrays.items()
        if key.startswith(_PREFIX_MODEL)
    }
    model.load_state_dict(model_state)
    if graph is not None and graph.mem is not None:
        if _PREFIX_MEMORY + "data" not in arrays:
            raise KeyError("checkpoint has no memory state but the graph expects it")
        graph.mem.data.data[...] = arrays[_PREFIX_MEMORY + "data"]
        graph.mem.time[...] = arrays[_PREFIX_MEMORY + "time"]
    if graph is not None and graph.mailbox is not None:
        if _PREFIX_MAILBOX + "mail" not in arrays:
            raise KeyError("checkpoint has no mailbox state but the graph expects it")
        graph.mailbox.mail.data[...] = arrays[_PREFIX_MAILBOX + "mail"]
        graph.mailbox.time[...] = arrays[_PREFIX_MAILBOX + "time"]
        if graph.mailbox._next_slot is not None:
            graph.mailbox._next_slot[...] = arrays[_PREFIX_MAILBOX + "cursor"]
    if optimizer is not None:
        optim_state = {
            key[len(_PREFIX_OPTIM):]: value
            for key, value in arrays.items()
            if key.startswith(_PREFIX_OPTIM)
        }
        _restore_optimizer(optimizer, optim_state)
