"""Checkpointing: save/restore full training state to a single ``.npz``.

Temporal models carry more state than parameters: resuming mid-stream
requires node memory, mailbox contents (and ring cursors), optimizer
moments, every RNG stream consumed by training, and the stream cursor
(epoch + batch index), or the replayed stream diverges.
``save_checkpoint`` captures all of it; ``load_checkpoint`` restores in
place and returns the stored metadata.

Writes are **atomic and self-verifying**: the archive is written to
``path + ".tmp"`` and renamed into place only once complete, so a write
killed mid-flight never clobbers the previous checkpoint; a CRC32 of all
array payloads is stored inside the archive and re-verified on load, so
a truncated or bit-flipped file is rejected with a clean ``ValueError``
naming the file instead of a numpy/zipfile internals error.
"""

from __future__ import annotations

import os
import warnings
import zlib
from typing import Dict, Optional, Tuple

import numpy as np

from ..durable.wal import fsync_dir
from ..nn import Adam, Module, Optimizer, SGD
from ..resilience.hooks import poke as _poke

__all__ = ["save_checkpoint", "load_checkpoint", "checkpoint_arrays"]

_PREFIX_MODEL = "model/"
_PREFIX_MEMORY = "memory/"
_PREFIX_MAILBOX = "mailbox/"
_PREFIX_OPTIM = "optim/"
_PREFIX_RNG = "rng/"
_META = "meta/format_version"
_META_CRC = "meta/crc32"
_STREAM = "stream/cursor"
_FORMAT_VERSION = 2
#: version-1 archives (no RNG/stream/CRC sections) still load.
_COMPATIBLE_VERSIONS = (1, 2)


def _optimizer_state(optimizer: Optimizer) -> Dict[str, np.ndarray]:
    """Flatten optimizer moments, keyed by parameter position."""
    state: Dict[str, np.ndarray] = {}
    if isinstance(optimizer, Adam):
        state["t"] = np.array([optimizer._t], dtype=np.int64)
        for i, p in enumerate(optimizer.params):
            m = optimizer._m.get(id(p))
            v = optimizer._v.get(id(p))
            if m is not None:
                state[f"m/{i}"] = m
                state[f"v/{i}"] = v
    elif isinstance(optimizer, SGD):
        for i, p in enumerate(optimizer.params):
            vel = optimizer._velocity.get(id(p))
            if vel is not None:
                state[f"vel/{i}"] = vel
    return state


def _restore_optimizer(optimizer: Optimizer, state: Dict[str, np.ndarray]) -> None:
    """Restore moments *exactly*: entries absent from the checkpoint are
    dropped, so rolling back to an early checkpoint cannot leave stale
    (or fault-poisoned) moments from the abandoned timeline behind."""
    if isinstance(optimizer, Adam):
        optimizer._m.clear()
        optimizer._v.clear()
        optimizer._t = int(state["t"][0]) if "t" in state else 0
        for i, p in enumerate(optimizer.params):
            if f"m/{i}" in state:
                optimizer._m[id(p)] = state[f"m/{i}"].copy()
                optimizer._v[id(p)] = state[f"v/{i}"].copy()
    elif isinstance(optimizer, SGD):
        optimizer._velocity.clear()
        for i, p in enumerate(optimizer.params):
            if f"vel/{i}" in state:
                optimizer._velocity[id(p)] = state[f"vel/{i}"].copy()


# ---- RNG state (bit-exact resume) -----------------------------------------------


def _pack_generator(gen: np.random.Generator) -> np.ndarray:
    """Serialize a PCG64-backed Generator's state to six uint64 words."""
    state = gen.bit_generator.state
    if state.get("bit_generator") != "PCG64":
        raise ValueError(
            f"can only checkpoint PCG64 generators, got {state.get('bit_generator')!r}"
        )
    words = []
    for val in (state["state"]["state"], state["state"]["inc"]):  # 128-bit each
        words.append(val & 0xFFFFFFFFFFFFFFFF)
        words.append((val >> 64) & 0xFFFFFFFFFFFFFFFF)
    words.append(int(state["has_uint32"]))
    words.append(int(state["uinteger"]))
    return np.array(words, dtype=np.uint64)


def _restore_generator(gen: np.random.Generator, words: np.ndarray) -> None:
    """Restore a Generator (in place) from :func:`_pack_generator` words."""
    w = [int(x) for x in words]
    gen.bit_generator.state = {
        "bit_generator": "PCG64",
        "state": {"state": w[0] | (w[1] << 64), "inc": w[2] | (w[3] << 64)},
        "has_uint32": w[4],
        "uinteger": w[5],
    }


# ---- integrity ------------------------------------------------------------------


def _crc32_of(arrays: Dict[str, np.ndarray]) -> int:
    """CRC32 over every array's name, dtype, shape, and raw bytes."""
    crc = 0
    for key in sorted(arrays):
        value = np.ascontiguousarray(arrays[key])
        crc = zlib.crc32(key.encode(), crc)
        crc = zlib.crc32(str(value.dtype).encode(), crc)
        crc = zlib.crc32(str(value.shape).encode(), crc)
        crc = zlib.crc32(value.tobytes(), crc)
    return crc & 0xFFFFFFFF


def checkpoint_arrays(
    model: Module,
    graph=None,
    optimizer: Optional[Optimizer] = None,
    generators: Optional[Dict[str, np.random.Generator]] = None,
    stream: Optional[Tuple[int, int]] = None,
) -> Dict[str, np.ndarray]:
    """Assemble the flat array dict a checkpoint stores.

    Args:
        model: module whose ``state_dict`` is captured.
        graph: optional graph; attached memory/mailbox state is captured.
        optimizer: optional optimizer; moments are captured.
        generators: named RNG streams (e.g. the global generator and the
            negative sampler's) captured for bit-exact resume.
        stream: ``(epoch, batch)`` cursor of the *next* batch to run.
    """
    arrays: Dict[str, np.ndarray] = {_META: np.array([_FORMAT_VERSION])}
    for name, value in model.state_dict().items():
        arrays[_PREFIX_MODEL + name] = value
    if graph is not None and graph.mem is not None:
        arrays[_PREFIX_MEMORY + "data"] = graph.mem.data.data.copy()
        arrays[_PREFIX_MEMORY + "time"] = graph.mem.time.copy()
    if graph is not None and graph.mailbox is not None:
        arrays[_PREFIX_MAILBOX + "mail"] = graph.mailbox.mail.data.copy()
        arrays[_PREFIX_MAILBOX + "time"] = graph.mailbox.time.copy()
        if graph.mailbox._next_slot is not None:
            arrays[_PREFIX_MAILBOX + "cursor"] = graph.mailbox._next_slot.copy()
    if optimizer is not None:
        for key, value in _optimizer_state(optimizer).items():
            arrays[_PREFIX_OPTIM + key] = value
    if generators:
        for name, gen in generators.items():
            arrays[_PREFIX_RNG + name] = _pack_generator(gen)
    if stream is not None:
        arrays[_STREAM] = np.array(list(stream), dtype=np.int64)
    return arrays


def save_checkpoint(
    path: str,
    model: Module,
    graph=None,
    optimizer: Optional[Optimizer] = None,
    generators: Optional[Dict[str, np.random.Generator]] = None,
    stream: Optional[Tuple[int, int]] = None,
) -> None:
    """Atomically write model + memory/mailbox + optimizer + RNG state.

    The archive is staged at ``path + ".tmp"`` and renamed over *path*
    only after the write completes, so an interrupted save leaves any
    previous checkpoint at *path* intact and loadable.
    """
    arrays = checkpoint_arrays(
        model, graph=graph, optimizer=optimizer, generators=generators, stream=stream
    )
    arrays[_META_CRC] = np.array([_crc32_of(arrays)], dtype=np.uint64)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        _poke("checkpoint.kill", path=tmp)  # fault site: may truncate + raise
        os.replace(tmp, path)
        # The rename itself is only durable once the directory entry is
        # flushed; without this a crash shortly after save_checkpoint can
        # roll the directory back to the *previous* checkpoint (or none).
        fsync_dir(directory)
    except BaseException:
        if os.path.exists(tmp):
            os.remove(tmp)
        raise


def _read_archive(path: str) -> Tuple[Dict[str, np.ndarray], bool]:
    """Load and integrity-check an archive; clean errors on corruption.

    Returns ``(arrays, verified)`` — ``verified`` is False for archives
    written without a CRC section (format version 1), whose content
    could be silently corrupt.  Previously that skip was invisible to
    callers; now it is surfaced all the way up through
    :func:`load_checkpoint`.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(f"no checkpoint at {path!r}")
    try:
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
    except Exception as exc:
        raise ValueError(
            f"checkpoint file {path!r} is corrupted or truncated ({exc})"
        ) from exc
    stored_crc = arrays.pop(_META_CRC, None)
    if stored_crc is None:
        warnings.warn(
            f"checkpoint {path!r} has no stored CRC32 (format version 1 "
            "archive?): integrity cannot be verified",
            RuntimeWarning,
            stacklevel=3,
        )
        return arrays, False
    if int(stored_crc[0]) != _crc32_of(arrays):
        raise ValueError(
            f"checkpoint file {path!r} failed its CRC32 integrity check "
            "(partial write or bit corruption)"
        )
    return arrays, True


def load_checkpoint(
    path: str,
    model: Module,
    graph=None,
    optimizer: Optional[Optimizer] = None,
    generators: Optional[Dict[str, np.random.Generator]] = None,
) -> Dict[str, object]:
    """Restore state saved by :func:`save_checkpoint` (in place).

    Raises ``ValueError`` on a corrupted/truncated file or a CRC
    mismatch, and ``KeyError``/``ValueError`` on structural mismatches
    (missing parameters, wrong shapes, state the target cannot hold), so
    silently loading the wrong checkpoint is not possible.

    Returns a metadata dict with the archive ``"version"``, the
    ``"stream"`` cursor (``(epoch, batch)`` tuple, or ``None`` for
    checkpoints taken outside a resumable training loop), and
    ``"verified"`` — whether the archive's CRC32 was present and checked
    (False only for legacy version-1 archives, which also raise a
    ``RuntimeWarning``).
    """
    arrays, verified = _read_archive(path)
    version = int(arrays.pop(_META, np.array([0]))[0])
    if version not in _COMPATIBLE_VERSIONS:
        raise ValueError(f"unsupported checkpoint format version: {version}")
    model_state = {
        key[len(_PREFIX_MODEL):]: value
        for key, value in arrays.items()
        if key.startswith(_PREFIX_MODEL)
    }
    model.load_state_dict(model_state)
    has_memory = _PREFIX_MEMORY + "data" in arrays
    has_mailbox = _PREFIX_MAILBOX + "mail" in arrays
    if graph is not None:
        if graph.mem is not None and not has_memory:
            raise KeyError("checkpoint has no memory state but the graph expects it")
        if graph.mem is None and has_memory:
            raise ValueError(
                f"checkpoint {path!r} contains node-memory state but the "
                "target graph has no Memory attached (call g.set_memory "
                "before loading, or it would be silently dropped)"
            )
        if graph.mailbox is not None and not has_mailbox:
            raise KeyError("checkpoint has no mailbox state but the graph expects it")
        if graph.mailbox is None and has_mailbox:
            raise ValueError(
                f"checkpoint {path!r} contains mailbox state but the "
                "target graph has no Mailbox attached (call g.set_mailbox "
                "before loading, or it would be silently dropped)"
            )
        if graph.mem is not None:
            graph.mem.data.data[...] = arrays[_PREFIX_MEMORY + "data"]
            graph.mem.time[...] = arrays[_PREFIX_MEMORY + "time"]
        if graph.mailbox is not None:
            graph.mailbox.mail.data[...] = arrays[_PREFIX_MAILBOX + "mail"]
            graph.mailbox.time[...] = arrays[_PREFIX_MAILBOX + "time"]
            if graph.mailbox._next_slot is not None:
                graph.mailbox._next_slot[...] = arrays[_PREFIX_MAILBOX + "cursor"]
    if optimizer is not None:
        optim_state = {
            key[len(_PREFIX_OPTIM):]: value
            for key, value in arrays.items()
            if key.startswith(_PREFIX_OPTIM)
        }
        _restore_optimizer(optimizer, optim_state)
    if generators:
        for name, gen in generators.items():
            key = _PREFIX_RNG + name
            if key not in arrays:
                raise KeyError(
                    f"checkpoint has no RNG state for generator {name!r} "
                    "(saved without generators?)"
                )
            _restore_generator(gen, arrays[key])
    stream = arrays.get(_STREAM)
    return {
        "version": version,
        "stream": (int(stream[0]), int(stream[1])) if stream is not None else None,
        "verified": verified,
    }
