"""Per-operation timing breakdown (the instrumentation behind Figure 7).

A :class:`Breakdown` accumulates wall-clock seconds per named operation
(batch preparation, sampling, time encoding, attention, backward, ...).
Model code does not need to know about it: the TGAT breakdown benchmark
wraps the relevant calls via :meth:`Breakdown.section` context managers.
"""

from __future__ import annotations

import contextlib
import time
from collections import OrderedDict
from typing import Dict, Iterator, Optional

__all__ = ["Breakdown", "Timer"]


class Timer:
    """Simple start/stop wall-clock timer."""

    def __init__(self):
        self.elapsed = 0.0
        self._start: Optional[float] = None

    def start(self) -> None:
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer was not started")
        delta = time.perf_counter() - self._start
        self.elapsed += delta
        self._start = None
        return delta

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None


class Breakdown:
    """Accumulate elapsed seconds per named section."""

    def __init__(self):
        self._timers: "OrderedDict[str, Timer]" = OrderedDict()

    @contextlib.contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time the enclosed block under *name* (accumulating)."""
        timer = self._timers.setdefault(name, Timer())
        timer.start()
        try:
            yield
        finally:
            timer.stop()

    def add(self, name: str, seconds: float) -> None:
        self._timers.setdefault(name, Timer()).elapsed += seconds

    def merge(self, totals: Dict[str, float], prefix: str = "") -> None:
        """Fold a name→seconds mapping into the breakdown.

        The natural source is :meth:`TContext.stats`'s ``kernel_seconds``
        field, merged under a ``prefix`` like ``"kernel:"``.  Note that
        kernel timings are typically *nested inside* coarser sections
        (e.g. ``kernel:sample`` inside ``sample``), so callers computing
        grand totals should exclude prefixed entries.
        """
        for name, seconds in totals.items():
            self.add(prefix + name, seconds)

    def totals(self) -> Dict[str, float]:
        """Mapping of section name to accumulated seconds."""
        return {name: timer.elapsed for name, timer in self._timers.items()}

    def total(self) -> float:
        return sum(t.elapsed for t in self._timers.values())

    def reset(self) -> None:
        self._timers.clear()

    def format_table(self, title: str = "") -> str:
        """Human-readable table of sections sorted by cost."""
        rows = sorted(self.totals().items(), key=lambda kv: -kv[1])
        width = max((len(name) for name, _ in rows), default=10)
        lines = []
        if title:
            lines.append(title)
        for name, seconds in rows:
            lines.append(f"  {name:<{width}}  {seconds:8.3f} s")
        lines.append(f"  {'total':<{width}}  {self.total():8.3f} s")
        return "\n".join(lines)
