"""Dynamic node classification on top of learned temporal embeddings.

The JODIE benchmark datasets carry rare dynamic labels (user banned,
student dropout).  The standard protocol (used by TGAT/TGN/TGL) is a
*decoder* approach: train the TGNN on link prediction, then train a small
MLP decoder on the frozen time-aware source-node embeddings to predict the
interaction labels, reporting ROC-AUC on the chronologically later split.

This module provides that pipeline for any model exposing
``compute_embeddings(batch)`` (all four TGLite models and ManualTGAT).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core import TGraph, iter_batches
from ..data import TemporalDataset
from ..nn import MLP, Adam, bce_with_logits
from ..tensor import Tensor, no_grad
from .metrics import roc_auc

__all__ = ["NodeClassifier", "collect_source_embeddings", "train_node_classifier"]


class NodeClassifier(MLP):
    """Two-layer MLP decoder mapping an embedding to a label logit."""

    def __init__(self, dim_embed: int, dim_hidden: int = 64, dropout: float = 0.1):
        super().__init__(dim_embed, dim_hidden, 1, dropout=dropout)

    def forward(self, x: Tensor) -> Tensor:
        return super().forward(x).squeeze(1)


def collect_source_embeddings(
    model,
    g: TGraph,
    dataset: TemporalDataset,
    batch_size: int,
    start: int = 0,
    stop: int = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Stream edges through the trained model, harvesting source embeddings.

    Returns ``(embeddings, labels)`` where row *i* is the time-aware
    embedding of edge *i*'s source node at the interaction time, paired
    with the dataset's dynamic label for that interaction.  The model runs
    in inference mode; memory-based state keeps streaming forward, as in
    deployment.
    """
    if dataset.edge_labels is None:
        raise ValueError(f"dataset {dataset.name!r} has no dynamic labels")
    model.eval()
    embeds: List[np.ndarray] = []
    labels: List[np.ndarray] = []
    stop = g.num_edges if stop is None else stop
    with no_grad():
        for batch in iter_batches(g, batch_size, start=start, stop=stop):
            # Link-prediction models expect negatives; any placeholder works
            # since we only read the source-slice of the embeddings.
            batch.neg_nodes = batch.dst
            out = model.compute_embeddings(batch)
            embeds.append(out.numpy()[: len(batch)].copy())
            labels.append(dataset.edge_labels[batch.start : batch.stop])
    return np.concatenate(embeds), np.concatenate(labels)


def train_node_classifier(
    embeddings: np.ndarray,
    labels: np.ndarray,
    train_fraction: float = 0.7,
    epochs: int = 40,
    lr: float = 1e-3,
    batch_size: int = 512,
    seed: int = 0,
    dim_hidden: int = 64,
) -> Tuple[NodeClassifier, float]:
    """Fit the decoder on the chronologically earlier embeddings.

    Positive interactions are re-weighted by the inverse class frequency
    (the datasets are ~0.4% positive).  Returns the trained decoder and the
    held-out ROC-AUC.
    """
    n = len(labels)
    split = int(n * train_fraction)
    train_x, train_y = embeddings[:split], labels[:split].astype(np.float32)
    test_x, test_y = embeddings[split:], labels[split:]

    decoder = NodeClassifier(embeddings.shape[1], dim_hidden=dim_hidden)
    optimizer = Adam(decoder.parameters(), lr=lr)
    pos_rate = max(train_y.mean(), 1e-6)
    pos_weight = float((1.0 - pos_rate) / pos_rate)
    rng = np.random.default_rng(seed)

    for _ in range(epochs):
        order = rng.permutation(split)
        for lo in range(0, split, batch_size):
            idx = order[lo : lo + batch_size]
            logits = decoder(Tensor(train_x[idx]))
            y = train_y[idx]
            weights = Tensor(np.where(y > 0, pos_weight, 1.0).astype(np.float32))
            loss = (bce_with_logits(logits, Tensor(y), reduction="none") * weights).mean()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()

    decoder.eval()
    with no_grad():
        scores = decoder(Tensor(test_x)).numpy()
    return decoder, roc_auc(test_y, scores)
