"""Experiment runner: builds any (framework, model, dataset, placement)
combination from §5 and measures training/inference, so each benchmark
file only declares the grid it sweeps.

Framework settings follow the paper's three bars:

* ``'tgl'``        — the TGL baseline (MFGs, pageable eager loads).
* ``'tglite'``     — TGLite with only ``preload()`` (pinned movement).
* ``'tglite+opt'`` — TGLite with every applicable optimization operator.

Placement modes:

* ``'gpu'``     — all data on the simulated device (all-on-GPU, Fig. 5);
* ``'cpu2gpu'`` — features/memory/mail host-resident with the transfer
  cost model enabled (CPU-to-GPU, Fig. 6).

Bandwidths are calibrated for the numpy substrate: our compute is orders
of magnitude slower than a V100, so the modeled PCIe bandwidth is scaled
down equivalently to keep the compute : transfer ratio in the regime the
paper measures (TGL roughly 3-4x slower when data lives on the host).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

import numpy as np

from .. import core as tg
from ..data import NegativeSampler, get_dataset
from ..models import APAN, JODIE, TGAT, TGN, OptFlags
from ..nn import Adam
from ..store import StoreConfig, TieredFeatureStore
from ..tensor import manual_seed
from ..tensor.device import runtime
from ..tgl import TGLAPAN, TGLJODIE, TGLMailBox, TGLTGAT, TGLTGN
from .trainer import TrainResult, evaluate, train, warm_replay

__all__ = ["ExperimentConfig", "Experiment", "FRAMEWORKS", "MODELS", "run_training", "run_inference"]

FRAMEWORKS = ("tgl", "tglite", "tglite+opt")
MODELS = ("jodie", "apan", "tgat", "tgn")

#: Modeled host-to-device bandwidths (bytes/s), scaled to the substrate.
PAGEABLE_BANDWIDTH = 40e6
PINNED_BANDWIDTH = 120e6


@dataclass
class ExperimentConfig:
    """One cell of the evaluation grid."""

    dataset: str = "wiki"
    model: str = "tgat"
    framework: str = "tglite"
    placement: str = "gpu"  # 'gpu' | 'cpu2gpu'
    batch_size: int = 300
    epochs: int = 3
    num_layers: int = 2
    num_nbrs: int = 10
    num_heads: int = 2
    dim_time: int = 32
    dim_embed: int = 32
    dim_mem: int = 32
    mailbox_slots: int = 10
    dropout: float = 0.1
    sampling: str = "recent"
    lr: float = 1e-3
    seed: int = 7
    #: simulated device capacity in bytes (None = unlimited).
    device_capacity: Optional[int] = None
    #: explicit OptFlags for TGLite settings (overrides the framework
    #: presets; used by the single-optimization ablation of Table 6).
    opt_flags: Optional[OptFlags] = None
    #: tiered feature-store knobs (None = the context's store defaults).
    #: Setting any of them also opts the run into the store-driven batch
    #: prefetch pipeline (lookahead gathers on the simulated clock).
    store_hot_mb: Optional[float] = None
    store_cold_dir: Optional[str] = None
    store_prefetch_depth: Optional[int] = None

    @property
    def uses_feature_store(self) -> bool:
        return (
            self.store_hot_mb is not None
            or self.store_cold_dir is not None
            or self.store_prefetch_depth is not None
        )

    def label(self) -> str:
        return f"{self.model}/{self.dataset}/{self.framework}/{self.placement}"


def _opt_flags(framework: str) -> OptFlags:
    if framework == "tglite":
        return OptFlags.preload_only()
    if framework == "tglite+opt":
        return OptFlags.all()
    raise ValueError(f"not a TGLite framework setting: {framework!r}")


class Experiment:
    """A fully constructed model + graph + samplers, ready to run."""

    def __init__(self, cfg: ExperimentConfig):
        if cfg.framework not in FRAMEWORKS:
            raise ValueError(f"unknown framework {cfg.framework!r}")
        if cfg.model not in MODELS:
            raise ValueError(f"unknown model {cfg.model!r}")
        if cfg.placement not in ("gpu", "cpu2gpu"):
            raise ValueError(f"unknown placement {cfg.placement!r}")
        self.cfg = cfg
        self.dataset = get_dataset(cfg.dataset)
        self.train_end, self.val_end, self.test_end = self.dataset.splits()
        self.neg_sampler = NegativeSampler.for_dataset(self.dataset, seed=cfg.seed)

        # Placement: compute always happens on the simulated device; the
        # placement mode decides where bulk data lives.
        runtime.reset()
        runtime.simulate_transfer_cost = True
        runtime.pageable_bandwidth = PAGEABLE_BANDWIDTH
        runtime.pinned_bandwidth = PINNED_BANDWIDTH
        if cfg.device_capacity is not None:
            runtime.set_capacity("cuda", cfg.device_capacity)
        data_device = "cuda" if cfg.placement == "gpu" else "cpu"

        manual_seed(cfg.seed)
        self.g = self.dataset.build_graph(feature_device=data_device)
        dim_node = self.dataset.nfeat.shape[1]
        dim_edge = self.dataset.efeat.shape[1]

        store_cfg = StoreConfig().with_overrides(
            hot_mb=cfg.store_hot_mb,
            cold_dir=cfg.store_cold_dir,
            prefetch_depth=cfg.store_prefetch_depth,
        )
        if cfg.framework == "tgl":
            self.ctx = None
            self.model = self._build_tgl(dim_node, dim_edge, data_device)
            if cfg.uses_feature_store and hasattr(self.model, "feature_store"):
                # The baseline's eager loads resolve through the same
                # tiering implementation as the TGLite front-ends.
                self.model.feature_store = TieredFeatureStore(store_cfg)
        else:
            self.ctx = tg.TContext(self.g, device="cuda", store=store_cfg)
            self.model = self._build_tglite(dim_node, dim_edge, data_device)
        self.model.to("cuda")
        self.optimizer = Adam(self.model.parameters(), lr=cfg.lr)

    # ---- builders ---------------------------------------------------------------

    def _build_tglite(self, dim_node: int, dim_edge: int, data_device: str):
        cfg = self.cfg
        opt = cfg.opt_flags if cfg.opt_flags is not None else _opt_flags(cfg.framework)
        common = dict(dim_node=dim_node, dim_edge=dim_edge, dim_time=cfg.dim_time,
                      dim_embed=cfg.dim_embed, opt=opt)
        if cfg.model == "tgat":
            return TGAT(self.ctx, num_layers=cfg.num_layers, num_heads=cfg.num_heads,
                        num_nbrs=cfg.num_nbrs, dropout=cfg.dropout,
                        sampling=cfg.sampling, **common)
        if cfg.model == "tgn":
            self.g.set_memory(cfg.dim_mem, device=data_device)
            self.g.set_mailbox(TGN.required_mailbox_dim(cfg.dim_mem, dim_edge), device=data_device)
            return TGN(self.ctx, dim_mem=cfg.dim_mem, num_layers=cfg.num_layers,
                       num_heads=cfg.num_heads, num_nbrs=cfg.num_nbrs,
                       dropout=cfg.dropout, sampling=cfg.sampling, **common)
        if cfg.model == "jodie":
            self.g.set_memory(cfg.dim_mem, device=data_device)
            self.g.set_mailbox(JODIE.required_mailbox_dim(cfg.dim_mem, dim_edge), device=data_device)
            return JODIE(self.ctx, dim_mem=cfg.dim_mem, **common)
        self.g.set_memory(cfg.dim_mem, device=data_device)
        self.g.set_mailbox(
            APAN.required_mailbox_dim(cfg.dim_mem, dim_edge),
            slots=cfg.mailbox_slots, device=data_device,
        )
        return APAN(self.ctx, dim_mem=cfg.dim_mem, num_heads=cfg.num_heads,
                    num_nbrs=cfg.num_nbrs, mailbox_slots=cfg.mailbox_slots,
                    sampling=cfg.sampling, **common)

    def _build_tgl(self, dim_node: int, dim_edge: int, data_device: str):
        cfg = self.cfg
        common = dict(device="cuda", dim_node=dim_node, dim_edge=dim_edge,
                      dim_time=cfg.dim_time, dim_embed=cfg.dim_embed)
        n = self.dataset.num_nodes
        if cfg.model == "tgat":
            return TGLTGAT(self.g, num_layers=cfg.num_layers, num_heads=cfg.num_heads,
                           num_nbrs=cfg.num_nbrs, dropout=cfg.dropout,
                           sampling=cfg.sampling, **common)
        if cfg.model == "tgn":
            mailbox = TGLMailBox(n, cfg.dim_mem, 2 * cfg.dim_mem + dim_edge, device=data_device)
            return TGLTGN(self.g, mailbox, dim_mem=cfg.dim_mem, num_layers=cfg.num_layers,
                          num_heads=cfg.num_heads, num_nbrs=cfg.num_nbrs,
                          dropout=cfg.dropout, sampling=cfg.sampling, **common)
        if cfg.model == "jodie":
            mailbox = TGLMailBox(n, cfg.dim_mem, cfg.dim_mem + dim_edge, device=data_device)
            return TGLJODIE(self.g, mailbox, dim_mem=cfg.dim_mem, **common)
        mailbox = TGLMailBox(n, cfg.dim_mem, 2 * cfg.dim_mem + dim_edge,
                             slots=cfg.mailbox_slots, device=data_device)
        return TGLAPAN(self.g, mailbox, dim_mem=cfg.dim_mem, num_heads=cfg.num_heads,
                       num_nbrs=cfg.num_nbrs, sampling=cfg.sampling, **common)

    # ---- running -------------------------------------------------------------------

    @property
    def _prefetch_ctx(self):
        """The context, when the config opts into store-driven prefetch."""
        return self.ctx if self.cfg.uses_feature_store else None

    def run_training(self) -> TrainResult:
        """Train for ``cfg.epochs`` with per-epoch validation AP."""
        return train(
            self.model, self.g, self.optimizer, self.neg_sampler,
            batch_size=self.cfg.batch_size, epochs=self.cfg.epochs,
            train_end=self.train_end, eval_end=self.val_end,
            ctx=self._prefetch_ctx,
        )

    def run_resilient_training(
        self,
        checkpoint_dir: str,
        checkpoint_every: int = 50,
        resume: bool = False,
        injector=None,
    ):
        """Train under the fault-tolerant runtime (checkpoint + recovery).

        Returns a :class:`~repro.bench.resilient.ResilientResult`; pass
        ``resume=True`` to continue a previous run from its checkpoint.
        """
        from .resilient import ResilientTrainer

        trainer = ResilientTrainer(
            self.model, self.g, self.optimizer, self.neg_sampler,
            batch_size=self.cfg.batch_size, checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every, injector=injector,
            ctx=self._prefetch_ctx,
        )
        return trainer.train(
            epochs=self.cfg.epochs, train_end=self.train_end,
            eval_end=self.val_end, resume=resume,
        )

    def run_test_inference(self, warm: bool = True) -> Tuple[float, float]:
        """Time test-split inference; returns ``(seconds, AP)``.

        Args:
            warm: replay train+val first (untimed) so memory-based models
                see the stream's history, mirroring §5.3's protocol.
        """
        if warm:
            warm_replay(self.model, self.g, self.neg_sampler,
                        self.cfg.batch_size, stop=self.val_end)
        return evaluate(self.model, self.g, self.neg_sampler,
                        self.cfg.batch_size, start=self.val_end,
                        stop=self.test_end, ctx=self._prefetch_ctx)

    def close(self) -> None:
        """Reset global runtime state (bandwidths, capacities, stats)."""
        runtime.reset()


def run_training(cfg: ExperimentConfig) -> TrainResult:
    """Convenience: build, train, tear down."""
    exp = Experiment(cfg)
    try:
        return exp.run_training()
    finally:
        exp.close()


def run_inference(cfg: ExperimentConfig, train_epochs: int = 1) -> Tuple[float, float]:
    """Convenience: build, briefly train, then time test inference."""
    exp = Experiment(cfg)
    try:
        if train_epochs:
            train(exp.model, exp.g, exp.optimizer, exp.neg_sampler,
                  batch_size=cfg.batch_size, epochs=train_epochs,
                  train_end=exp.train_end)
        return exp.run_test_inference()
    finally:
        exp.close()
