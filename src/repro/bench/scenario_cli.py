"""The ``scenarios`` CLI subcommand: accuracy under streaming drift.

Runs one or more scenario streams (:mod:`repro.scenarios`) through the
frozen / continual / oracle closed loop and prints — optionally writes —
an accuracy-under-drift table: overall AP, final-phase AP, the worst
windowed AP, and the continual learner's swap count per configuration.
This is the entry point the scenario-matrix CI job drives.

Examples::

    python -m repro.bench scenarios --list
    python -m repro.bench scenarios --scenario distribution_drift \
        --knob mode=abrupt --noise-frac 0.45
    python -m repro.bench scenarios --matrix --events 1200 --output drift.txt
    python -m repro.bench scenarios --scenario node_churn \
        --staleness 0 --staleness 1000 --staleness inf
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from typing import List, Optional, Sequence

import numpy as np

__all__ = ["add_store_flags", "build_scenarios_parser", "scenarios_main",
           "store_config_from_args", "store_flags_set"]

MODES = ("frozen", "continual", "oracle")


def add_store_flags(parser: argparse.ArgumentParser) -> None:
    """Tiered feature-store knobs shared by every ``repro.bench`` subcommand.

    Setting any of them opts the run into the :mod:`repro.store` tiering
    path (store-driven prefetch for training, scoring-row gathers through
    the store for serving).
    """
    grp = parser.add_argument_group("tiered feature store")
    grp.add_argument("--store-hot-mb", type=float, default=None, metavar="MB",
                     help="hot-tier budget in MiB per feature space "
                          "(default: row-count sized)")
    grp.add_argument("--store-cold-dir", default=None, metavar="DIR",
                     help="spill evicted rows into checksummed mmap files "
                          "under this directory (default: drop)")
    grp.add_argument("--prefetch-depth", type=int, default=None, metavar="N",
                     help="batches of sampler-lookahead prefetch "
                          "(0 disables the prefetcher)")


def store_flags_set(args) -> bool:
    """True when any of the :func:`add_store_flags` knobs was given."""
    return (args.store_hot_mb is not None
            or args.store_cold_dir is not None
            or args.prefetch_depth is not None)


def store_config_from_args(args):
    """A :class:`~repro.store.StoreConfig` reflecting the CLI knobs."""
    from ..store import StoreConfig

    return StoreConfig().with_overrides(
        hot_mb=args.store_hot_mb,
        cold_dir=args.store_cold_dir,
        prefetch_depth=args.prefetch_depth,
    )


def build_scenarios_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench scenarios",
        description="Score streaming scenarios under frozen vs continual "
                    "(train-on-serve-log) models.",
    )
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="NAME",
                        help="scenario to run (repeatable; default: "
                             "distribution_drift)")
    parser.add_argument("--matrix", action="store_true",
                        help="run every registered scenario (ignores "
                             "--scenario)")
    parser.add_argument("--mode", action="append", default=None,
                        choices=MODES,
                        help="closed-loop mode (repeatable; default: "
                             "frozen + continual)")
    parser.add_argument("--staleness", action="append", default=None,
                        metavar="BUDGET",
                        help="staleness budget in event-time units, or "
                             "'inf' (repeatable: sweeps the continual "
                             "mode; default 0)")
    parser.add_argument("--events", type=int, default=2400)
    parser.add_argument("--num-nodes", type=int, default=160)
    parser.add_argument("--noise-frac", type=float, default=0.45,
                        help="label-0 background noise fraction (the "
                             "negative class AP is scored against)")
    parser.add_argument("--knob", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="generator-specific knob (repeatable), e.g. "
                             "--knob mode=gradual --knob drift_start=0.4")
    parser.add_argument("--seed", type=int, default=11,
                        help="stream seed (generator determinism)")
    parser.add_argument("--loop-seed", type=int, default=3,
                        help="model/serving seed for the closed loop")
    parser.add_argument("--warmup-frac", type=float, default=0.25)
    parser.add_argument("--request-size", type=int, default=50)
    parser.add_argument("--dim", type=int, default=16)
    parser.add_argument("--lr", type=float, default=0.05)
    parser.add_argument("--num-windows", type=int, default=10)
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="also write the table to this file (the CI "
                             "artifact)")
    parser.add_argument("--list", action="store_true", dest="list_scenarios",
                        help="print the generator registry and exit")
    add_store_flags(parser)
    return parser


def _parse_knobs(pairs: Sequence[str]) -> dict:
    knobs = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--knob expects KEY=VALUE, got {pair!r}")
        key, value = pair.split("=", 1)
        try:
            knobs[key] = int(value)
        except ValueError:
            try:
                knobs[key] = float(value)
            except ValueError:
                knobs[key] = value
    return knobs


def _parse_budgets(raw: Optional[Sequence[str]]) -> List[float]:
    if not raw:
        return [0.0]
    return [float(b) for b in raw]  # float('inf') parses 'inf'


def _fmt_table(title: str, headers: Sequence[str],
               rows: Sequence[Sequence[object]]) -> str:
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.extend("  ".join(c.ljust(w) for c, w in zip(row, widths))
                 for row in cells)
    return "\n".join(lines)


def _final_phase_ap(summary: dict) -> float:
    phases = summary["phases"]
    return phases[max(phases)]


def scenarios_main(argv: Optional[List[str]] = None) -> int:
    from ..scenarios import available_scenarios, make_stream, run_closed_loop

    args = build_scenarios_parser().parse_args(argv)
    catalog = available_scenarios()
    if args.list_scenarios:
        width = max(len(n) for n in catalog)
        for name, desc in catalog.items():
            print(f"{name:{width}s}  {desc}")
        return 0

    names = sorted(catalog) if args.matrix else (args.scenario
                                                 or ["distribution_drift"])
    for name in names:
        if name not in catalog:
            raise SystemExit(
                f"unknown scenario {name!r}; available: {sorted(catalog)}"
            )
    modes = args.mode or ["frozen", "continual"]
    budgets = _parse_budgets(args.staleness)
    use_store = store_flags_set(args)
    store_cfg = store_config_from_args(args) if use_store else None

    rows = []
    for name in names:
        stream = make_stream(
            name,
            num_events=args.events,
            num_nodes=args.num_nodes,
            noise_frac=args.noise_frac,
            seed=args.seed,
            knobs=_parse_knobs(args.knob),
        )
        for mode in modes:
            # only the continual mode reacts to the budget; run the
            # others once
            for budget in (budgets if mode == "continual" else [0.0]):
                run = run_closed_loop(
                    stream,
                    mode=mode,
                    staleness_budget=budget,
                    warmup_frac=args.warmup_frac,
                    dim=args.dim,
                    lr=args.lr,
                    request_size=args.request_size,
                    seed=args.loop_seed,
                    num_windows=args.num_windows,
                    workdir=tempfile.mkdtemp(prefix=f"scenario-{name}-{mode}-"),
                    feature_store=use_store,
                    store=store_cfg,
                )
                summary = run["summary"]
                learner = run["learner"]
                rows.append([
                    name,
                    mode,
                    ("-" if mode != "continual"
                     else ("inf" if np.isinf(budget) else f"{budget:g}")),
                    f"{summary['overall_ap']:.4f}",
                    f"{_final_phase_ap(summary):.4f}",
                    f"{summary['min_window_ap']:.4f}",
                    learner["swaps"] if learner else "-",
                ])
                print(f"  {name}/{mode}"
                      + (f" budget={budget:g}" if mode == "continual" else "")
                      + f": overall AP {summary['overall_ap']:.4f}, "
                        f"final phase {_final_phase_ap(summary):.4f}")
                if use_store:
                    st = run["stats"]
                    print(f"    store: stall "
                          f"{st.get('store:stall_seconds', 0.0):.4g}s, "
                          f"saved {st.get('store:stall_saved_seconds', 0.0):.4g}s, "
                          f"prefetch hits "
                          f"{st.get('store:prefetch_hits', 0)}"
                          f"/{st.get('store:prefetch_issued', 0)}")

    title = (f"accuracy under drift ({args.events} events, "
             f"noise {args.noise_frac:g}, stream seed {args.seed}, "
             f"loop seed {args.loop_seed})")
    table = _fmt_table(
        title,
        ["scenario", "mode", "budget", "overall AP", "final-phase AP",
         "min window AP", "swaps"],
        rows,
    )
    print()
    print(table)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(table + "\n")
        print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(scenarios_main())
