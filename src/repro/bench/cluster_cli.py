"""``python -m repro.bench serve-cluster``: sharded serving under chaos.

Replays an event stream through a :class:`~repro.cluster.ServeCluster`
at a chosen offered load, optionally replicating each shard
(``--replication-factor N`` puts a primary plus N-1 lease-fenced
followers on distinct hosts) and arming the shard-level fault sites
(``--chaos`` kills and stalls group members and drops RPC legs,
log-shipping legs, and heartbeats mid-stream), and prints per-shard plus
cluster-level statistics: failovers, promotions, quorum commits, retries,
hedge wins, rebalance events, read availability, and p50/p99 latency.

``--scrub-interval`` tunes the anti-entropy scrubber's period on the
simulated clock and ``--inject-bitflip TIER[:SHARD[:MEMBER]]`` flips one
state bit out-of-band after the replay (tier ``memory``, ``mailbox``,
``wal``, or ``cold``), then requires the scrubber to detect and repair
it; scrub statistics (cycles, chunks, divergences, rows repaired, wall
seconds and their share of serve time) print with the summary.

``--check-equivalence`` additionally replays the same stream through a
clean single :class:`~repro.serve.runtime.ServeRuntime` and requires the
cluster's assembled final ``Memory``/``Mailbox`` state to be
bit-identical — the cluster-level recovery guarantee.  With
``--replication-factor >= 2`` it also requires that no read was ever
zero-filled (reads must fail over to surviving members).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..data import available_datasets, get_dataset

__all__ = ["build_serve_cluster_parser", "serve_cluster_main"]


def build_serve_cluster_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench serve-cluster",
        description="Replay an event stream through the sharded serving cluster.",
    )
    parser.add_argument("--shards", type=int, default=4,
                        help="number of shard replica groups")
    parser.add_argument("--replication-factor", type=int, default=1,
                        help="members per shard group (1 primary + N-1 "
                             "followers on distinct hosts)")
    parser.add_argument("--ack-quorum", type=int, default=None,
                        help="durable-append acks per quorum commit "
                             "(default: majority)")
    parser.add_argument("--staleness-bound", choices=("bounded", "strict"),
                        default="bounded",
                        help="'bounded' follower reads lag by their queue; "
                             "'strict' forces promotion before reading")
    parser.add_argument("--legacy-partials", action="store_true",
                        help="disable the per-row validity mask "
                             "(strict_partials=False legacy behavior)")
    parser.add_argument("--partition", choices=("hash", "temporal"),
                        default="hash", help="node partitioning policy")
    parser.add_argument("--dataset", choices=available_datasets(), default=None,
                        help="serve a real dataset's event stream "
                             "(default: synthetic)")
    parser.add_argument("--events", type=int, default=2000,
                        help="synthetic stream length (ignored with --dataset)")
    parser.add_argument("--num-nodes", type=int, default=200,
                        help="synthetic graph size (ignored with --dataset)")
    parser.add_argument("--payload-dim", type=int, default=16)
    parser.add_argument("--dim-mem", type=int, default=16)
    parser.add_argument("--batch-size", type=int, default=50,
                        help="events per serving request")
    parser.add_argument("--load", type=float, default=1.0,
                        help="offered load as a multiple of the full-quality "
                             "service rate (16 = heavy overload)")
    parser.add_argument("--deadline", type=float, default=2e-2,
                        help="per-request budget in simulated seconds")
    parser.add_argument("--max-queue", type=int, default=64)
    parser.add_argument("--shed-policy", choices=("reject-new", "drop-oldest"),
                        default="reject-new")
    parser.add_argument("--num-nbrs", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--mailbox-slots", type=int, default=1)
    parser.add_argument("--durable-root", default=None,
                        help="root directory for the per-shard WALs "
                             "(default: a private temp dir)")
    parser.add_argument("--fsync", choices=("always", "batch", "never"),
                        default="batch")
    parser.add_argument("--snapshot-every", type=int, default=64,
                        help="applied batches between per-shard snapshots")
    parser.add_argument("--heartbeat-interval", type=float, default=5e-3)
    parser.add_argument("--hedge-delay", type=float, default=6e-4,
                        help="hedged-send delay in seconds (<0 disables)")
    parser.add_argument("--scrub-interval", type=float, default=0.25,
                        help="anti-entropy scrub period in simulated "
                             "seconds (<= 0 disables periodic scrubbing; "
                             "the terminal drain pass always runs)")
    parser.add_argument("--inject-bitflip", default=None,
                        metavar="TIER[:SHARD[:MEMBER]]",
                        help="flip one state bit after the replay, bypassing "
                             "the write path, then let the scrubber detect "
                             "and repair it; TIER is memory|mailbox|wal|cold "
                             "(default shard 1, last group member)")
    parser.add_argument("--chaos", action="store_true",
                        help="arm the shard fault sites: shard kills + "
                             "stalls, RPC drops, heartbeat loss")
    parser.add_argument("--kill-shard", type=int, default=None, metavar="S",
                        help="deterministically kill shard S's primary "
                             "mid-stream (at the request 1/3 into the replay)")
    parser.add_argument("--kill-follower", type=int, default=None, metavar="S",
                        help="deterministically kill shard S's first "
                             "follower mid-stream (needs "
                             "--replication-factor >= 2)")
    parser.add_argument("--stall-shard", type=int, default=None, metavar="S",
                        help="deterministically stall shard S mid-stream")
    parser.add_argument("--check-equivalence", action="store_true",
                        help="also replay through a clean single runtime and "
                             "require bit-identical final state (runs the "
                             "cluster shed-free)")
    parser.add_argument("--assert-valid", action="store_true",
                        help="exit nonzero on violated invariants")
    return parser


def serve_cluster_main(argv: Optional[List[str]] = None) -> int:
    import time

    import numpy as np

    from ..cluster import ClusterConfig, ServeCluster
    from ..core import Mailbox, Memory, TContext, TGraph, TSampler
    from ..integrity import array_digest
    from ..resilience import FaultInjector
    from ..serve import ServeRuntime, build_stream, replay, split_batches
    from ..serve.events import EventBatch

    args = build_serve_cluster_parser().parse_args(argv)

    if args.dataset is not None:
        d = get_dataset(args.dataset)
        payload = d.efeat[:, : args.payload_dim] if d.efeat is not None else None
        stream = EventBatch(np.arange(d.num_edges), d.src, d.dst, d.ts, payload)
        num_nodes = d.num_nodes
    else:
        stream = build_stream(args.num_nodes, args.events,
                              payload_dim=args.payload_dim, seed=args.seed)
        num_nodes = args.num_nodes
    batches = split_batches(stream, args.batch_size)

    reliable = args.check_equivalence
    config = ClusterConfig(
        num_shards=args.shards,
        partition=args.partition,
        seed=args.seed,
        replication_factor=args.replication_factor,
        ack_quorum=args.ack_quorum,
        staleness_bound=args.staleness_bound,
        strict_partials=not args.legacy_partials,
        hedge_delay=None if args.hedge_delay < 0 else args.hedge_delay,
        heartbeat_interval=args.heartbeat_interval,
        durable_root=args.durable_root,
        fsync=args.fsync,
        snapshot_every=args.snapshot_every,
        scrub_interval=args.scrub_interval,
    )

    flip_target = None
    if args.inject_bitflip is not None:
        parts = args.inject_bitflip.split(":")
        tier = parts[0]
        if tier not in ("memory", "mailbox", "wal", "cold"):
            print(f"--inject-bitflip: unknown tier {tier!r} "
                  "(memory|mailbox|wal|cold)", file=sys.stderr)
            return 2
        shard = int(parts[1]) if len(parts) > 1 else min(1, args.shards - 1)
        member = (int(parts[2]) if len(parts) > 2
                  else args.replication_factor - 1)
        if not (0 <= shard < args.shards
                and 0 <= member < args.replication_factor):
            print("--inject-bitflip: shard/member out of range",
                  file=sys.stderr)
            return 2
        flip_target = (tier, shard, member)

    injector = None
    schedules = {}
    if args.kill_shard is not None:
        # member 0 (the primary) keeps the legacy extra == shard id
        schedules.setdefault("shard_crashes", set()).add(
            (0, max(1, len(batches) // 3), args.kill_shard)
        )
    if args.kill_follower is not None:
        if args.replication_factor < 2:
            print("--kill-follower needs --replication-factor >= 2",
                  file=sys.stderr)
            return 2
        # follower m of shard S is killed via extra = S + shards * m
        schedules.setdefault("shard_crashes", set()).add(
            (0, max(1, len(batches) // 3),
             args.kill_follower + args.shards * 1)
        )
    if args.stall_shard is not None:
        schedules.setdefault("shard_stalls", set()).add(
            (0, max(1, len(batches) // 4), args.stall_shard)
        )
    if args.chaos or schedules:
        replicated = args.chaos and args.replication_factor > 1
        injector = FaultInjector(
            seed=args.seed,
            rpc_send_drop_rate=0.03 if args.chaos else 0.0,
            rpc_recv_drop_rate=0.03 if args.chaos else 0.0,
            shard_crash_rate=0.002 if args.chaos else 0.0,
            shard_stall_rate=0.01 if args.chaos else 0.0,
            heartbeat_drop_rate=0.02 if args.chaos else 0.0,
            repl_ship_drop_rate=0.02 if replicated else 0.0,
            repl_ack_drop_rate=0.02 if replicated else 0.0,
            repl_promote_delay_rate=0.05 if replicated else 0.0,
            shard_crashes=schedules.get("shard_crashes", ()),
            shard_stalls=schedules.get("shard_stalls", ()),
        )

    g = TGraph(stream.src, stream.dst, stream.ts, num_nodes=num_nodes)
    ctx = TContext(g)
    cluster = ServeCluster(
        g, ctx, TSampler(args.num_nbrs, seed=args.seed), args.dim_mem,
        config=config, mailbox_slots=args.mailbox_slots,
        deadline=1e9 if reliable else args.deadline,
        max_queue=1 << 30 if reliable else args.max_queue,
        shed_policy=args.shed_policy,
        injector=injector, stream=stream,
    )

    print(f"replaying {len(stream)} events in {len(batches)} requests "
          f"over {args.shards} shards x {args.replication_factor} replicas "
          f"({args.partition}) at {args.load:g}x load")
    t0 = time.perf_counter()
    if injector is not None:
        with injector:
            results = replay(cluster, batches, load=args.load)
    else:
        results = replay(cluster, batches, load=args.load)
    serve_seconds = time.perf_counter() - t0

    flip_applied = False
    if flip_target is not None:
        tier, shard, member = flip_target
        if tier == "cold" and not cluster.scrubber._cold:
            # no feature store rides this CLI: register a demo cold tier
            # holding a copy of the final memory rows so the cold cell
            # of the scrub matrix is exercisable end to end
            from ..store import ColdTier
            rows = cluster.memory_image()[0][: min(64, num_nodes)].copy()
            cold = ColdTier(args.dim_mem)
            cold.write(np.arange(len(rows)), None, rows)
            cluster.scrubber.add_cold_tier(
                cold,
                source=lambda ns, ts: rows[np.asarray(ns, dtype=np.int64)],
            )
        flip_applied = cluster._apply_bitflip(
            cluster.groups[shard], member,
            ("flip", tier, 104729 + args.seed, 1 + args.seed % 7),
        )
        print(f"  injected bit flip: tier={tier} shard={shard} "
              f"member={member} applied={flip_applied}")
        cluster.drain()  # the scrub pass that detects + repairs the flip

    statuses = {s: sum(1 for r in results if r.status == s)
                for s in ("ok", "shed", "timeout")}
    stats = cluster.stats()
    for key in sorted(stats):
        print(f"  {key:34s} {stats[key]}")
    print(f"  statuses: ok={statuses['ok']} shed={statuses['shed']} "
          f"timeout={statuses['timeout']}")
    lat = ctx.stats().latency
    if lat is not None:
        print(f"  latency: p50={lat.p50:.4g}s p99={lat.p99:.4g}s (n={lat.count})")
    if injector is not None:
        print(f"  chaos: {len(injector.log)} faults fired")

    # Always printed, even when zero: a clean run must be distinguishable
    # from an unreported one.
    zero_rows = int(ctx.counters.get("serve:zero_rows", 0))
    print(f"  {'serve:zero_rows':34s} {zero_rows}")
    served_ok = [r for r in results if r.status == "ok"]
    fully_valid = sum(
        1 for r in served_ok if r.valid is None or bool(r.valid.all())
    )
    availability = fully_valid / max(1, len(results))
    print(f"  read availability: {availability:.4f} "
          f"({fully_valid}/{len(results)} requests fully valid, "
          f"{zero_rows} zero-filled rows)")
    scrub_seconds = float(stats.get("integrity:scrub_seconds", 0.0))
    overhead = scrub_seconds / serve_seconds if serve_seconds > 0 else 0.0
    print(f"  scrub: cycles={stats.get('integrity:cycles', 0)} "
          f"skipped={stats.get('integrity:skipped_cycles', 0)} "
          f"chunks={stats.get('integrity:chunks_scrubbed', 0)} "
          f"divergences={stats.get('integrity:divergences', 0)} "
          f"rows_repaired={stats.get('integrity:rows_repaired', 0)} "
          f"seconds={scrub_seconds:.4f} ({overhead:.2%} of serve wall time)")

    failures = []
    if flip_target is not None:
        if not flip_applied:
            failures.append(
                f"--inject-bitflip {args.inject_bitflip}: the targeted tier "
                "held no bytes to corrupt"
            )
        elif stats.get("integrity:divergences", 0) < 1:
            failures.append(
                "injected bit flip went undetected by the scrubber"
            )
        else:
            for group in cluster.groups:
                for rep in group.members:
                    if rep.digests is None:
                        continue
                    for comp, cd in rep.digests.components():
                        if cd.diverged():
                            failures.append(
                                f"shard {group.shard_id} member "
                                f"{rep.member_id}: {comp} still divergent "
                                "after repair"
                            )
    if args.check_equivalence and args.replication_factor >= 2:
        # With a surviving member per group, no read may ever zero-fill.
        if zero_rows > 0:
            failures.append(
                f"{zero_rows} rows zero-filled despite replication factor "
                f"{args.replication_factor} (reads must fail over)"
            )
    if args.check_equivalence:
        data, times = cluster.memory_image()
        mb_image = cluster.mailbox_image()
        g2 = TGraph(stream.src, stream.dst, stream.ts, num_nodes=num_nodes)
        ctx2 = TContext(g2)
        mem = Memory(num_nodes, args.dim_mem)
        mailbox = (Mailbox(num_nodes, args.dim_mem, slots=args.mailbox_slots)
                   if args.mailbox_slots > 0 else None)
        single = ServeRuntime(
            g2, ctx2, mem, TSampler(args.num_nbrs, seed=args.seed),
            mailbox=mailbox, deadline=1e9, max_queue=1 << 30,
        )
        replay(single, batches, load=args.load)
        same = mem.state_digest() == array_digest(data, times)
        if mailbox is not None and mb_image is not None:
            mail, mtime, cursor = mb_image
            image_digest = (array_digest(mail, mtime) if cursor is None
                            else array_digest(mail, mtime, cursor))
            same = same and mailbox.state_digest() == image_digest
        print(f"  cluster/single-replica equivalence: "
              f"{'bit-identical' if same else 'DIVERGED'}")
        if not same:
            failures.append(
                "cluster final state diverged from clean single-replica replay"
            )
    cluster.close()

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1 if args.assert_valid else 0
    if args.assert_valid:
        print("  all cluster invariants hold")
    return 0
