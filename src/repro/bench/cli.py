"""Command-line experiment runner.

Mirrors the artifact's training scripts (Appendix C): one command trains a
model/dataset/framework combination and reports per-epoch wall time and
average precision, optionally followed by timed test-set inference.

Examples::

    python -m repro.bench --model tgat --dataset wiki --framework tglite+opt
    python -m repro.bench --model tgn --dataset lastfm --placement cpu2gpu \
        --epochs 3 --inference
    python -m repro.bench --list-datasets

A ``serve`` subcommand replays an event stream through the hardened
online serving runtime (:mod:`repro.serve`)::

    python -m repro.bench serve --dataset wiki --load 16 --poison --assert-valid
    python -m repro.bench serve --events 5000 --load 4 --chaos

A ``scenarios`` subcommand scores streaming drift scenarios under
frozen vs continual (train-on-serve-log) models (:mod:`repro.scenarios`)::

    python -m repro.bench scenarios --list
    python -m repro.bench scenarios --matrix --events 1200 --output drift.txt

A ``serve-cluster`` subcommand replays the same streams through the
sharded, failure-tolerant serving cluster (:mod:`repro.cluster`)::

    python -m repro.bench serve-cluster --shards 4 --chaos
    python -m repro.bench serve-cluster --shards 8 --kill-shard 2 \
        --check-equivalence --assert-valid
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..data import available_datasets, get_dataset
from .cluster_cli import build_serve_cluster_parser, serve_cluster_main
from .experiments import FRAMEWORKS, MODELS, Experiment, ExperimentConfig
from .scenario_cli import (
    add_store_flags,
    build_scenarios_parser,
    scenarios_main,
    store_config_from_args,
    store_flags_set,
)

__all__ = ["main", "build_parser", "build_serve_parser", "serve_main",
           "build_scenarios_parser", "scenarios_main",
           "build_serve_cluster_parser", "serve_cluster_main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Train/evaluate a TGNN under a chosen framework setting.",
    )
    parser.add_argument("--model", choices=MODELS, default="tgat")
    parser.add_argument("--dataset", choices=available_datasets(), default="wiki")
    parser.add_argument("--framework", choices=FRAMEWORKS, default="tglite+opt")
    parser.add_argument("--placement", choices=("gpu", "cpu2gpu"), default="gpu",
                        help="all-on-GPU or host-resident data (simulated)")
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--batch-size", type=int, default=300)
    parser.add_argument("--num-nbrs", type=int, default=10)
    parser.add_argument("--num-layers", type=int, default=2)
    parser.add_argument("--dim-embed", type=int, default=32)
    parser.add_argument("--dim-time", type=int, default=32)
    parser.add_argument("--dim-mem", type=int, default=32)
    parser.add_argument("--sampling", choices=("recent", "uniform"), default="recent")
    parser.add_argument("--lr", type=float, default=1e-3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--inference", action="store_true",
                        help="after training, time test-set inference")
    parser.add_argument("--capacity-mb", type=int, default=None,
                        help="simulated device capacity in MiB (for OOM studies)")
    parser.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                        help="train under the fault-tolerant runtime, "
                             "checkpointing every N batches")
    parser.add_argument("--checkpoint-dir", default="checkpoints",
                        help="directory for the rolling checkpoint "
                             "(default: ./checkpoints)")
    parser.add_argument("--resume", action="store_true",
                        help="resume bit-exactly from the checkpoint in "
                             "--checkpoint-dir (implies the fault-tolerant "
                             "runtime)")
    parser.add_argument("--list-datasets", action="store_true",
                        help="print dataset statistics and exit")
    add_store_flags(parser)
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench serve",
        description="Replay an event stream through the online serving runtime.",
    )
    parser.add_argument("--dataset", choices=available_datasets(), default=None,
                        help="serve a real dataset's event stream "
                             "(default: synthetic)")
    parser.add_argument("--events", type=int, default=2000,
                        help="synthetic stream length (ignored with --dataset)")
    parser.add_argument("--num-nodes", type=int, default=200,
                        help="synthetic graph size (ignored with --dataset)")
    parser.add_argument("--payload-dim", type=int, default=16)
    parser.add_argument("--dim-mem", type=int, default=16)
    parser.add_argument("--batch-size", type=int, default=50,
                        help="events per serving request")
    parser.add_argument("--load", type=float, default=1.0,
                        help="offered load as a multiple of the full-quality "
                             "service rate (16 = heavy overload)")
    parser.add_argument("--deadline", type=float, default=2e-2,
                        help="per-request budget in simulated seconds")
    parser.add_argument("--max-queue", type=int, default=64)
    parser.add_argument("--shed-policy", choices=("reject-new", "drop-oldest"),
                        default="reject-new")
    parser.add_argument("--rate", type=float, default=None,
                        help="token-bucket admission rate (requests/sec)")
    parser.add_argument("--num-nbrs", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--poison", action="store_true",
                        help="inject malformed/duplicate/out-of-order events "
                             "into the stream")
    parser.add_argument("--chaos", action="store_true",
                        help="arm the resilience fault injector over the "
                             "serve.ingest/serve.commit/serve.poison sites")
    parser.add_argument("--check-equivalence", action="store_true",
                        help="with --poison: also replay the clean stream and "
                             "require bit-identical final state")
    parser.add_argument("--assert-valid", action="store_true",
                        help="exit nonzero on state violations or an "
                             "unbalanced ingestion ledger")
    parser.add_argument("--durable-dir", default=None,
                        help="write-ahead log each committed batch into this "
                             "directory (crash-consistent durable state)")
    parser.add_argument("--fsync", choices=("always", "batch", "never"),
                        default="batch",
                        help="WAL durability policy (with --durable-dir)")
    parser.add_argument("--snapshot-every", type=int, default=256,
                        help="commits between durable snapshots; 0 disables "
                             "(with --durable-dir)")
    parser.add_argument("--recover", action="store_true",
                        help="replay --durable-dir into memory/mailbox before "
                             "serving (resume a crashed runtime)")
    add_store_flags(parser)
    return parser


def serve_main(argv: Optional[List[str]] = None) -> int:
    import numpy as np

    from ..core import Mailbox, Memory, TContext, TGraph, TSampler
    from ..resilience import FaultInjector, validate_state
    from ..serve import ServeRuntime, build_stream, poison_stream, replay, split_batches
    from ..serve.events import EventBatch

    args = build_serve_parser().parse_args(argv)

    if args.dataset is not None:
        d = get_dataset(args.dataset)
        payload = d.efeat[:, : args.payload_dim] if d.efeat is not None else None
        stream = EventBatch(np.arange(d.num_edges), d.src, d.dst, d.ts, payload)
        num_nodes = d.num_nodes
    else:
        stream = build_stream(args.num_nodes, args.events,
                              payload_dim=args.payload_dim, seed=args.seed)
        num_nodes = args.num_nodes

    lateness = 0.0
    clean = stream
    if args.poison:
        stream, lateness, injected = poison_stream(clean, num_nodes, seed=args.seed)
        print("poisoned stream:", ", ".join(f"{k}={v}" for k, v in injected.items()),
              f"(lateness bound {lateness:.4g})")

    use_store = store_flags_set(args)

    def make_runtime(injector=None, reliable=False):
        g = TGraph(clean.src, clean.dst, clean.ts, num_nodes=num_nodes)
        ctx = TContext(g, store=store_config_from_args(args) if use_store else None)
        mem = Memory(num_nodes, args.dim_mem)
        mailbox = Mailbox(num_nodes, args.dim_mem)
        sampler = TSampler(args.num_nbrs, seed=args.seed)
        runtime = ServeRuntime(
            g, ctx, mem, sampler, mailbox=mailbox,
            deadline=1e9 if reliable else args.deadline,
            lateness=lateness,
            max_queue=1 << 30 if reliable else args.max_queue,
            shed_policy=args.shed_policy,
            rate=None if reliable else args.rate,
            injector=injector,
            durable_dir=None if reliable else args.durable_dir,
            durable_fsync=args.fsync,
            snapshot_every=args.snapshot_every or None,
            recover=args.recover,
            feature_store=use_store,
        )
        return g, ctx, mem, mailbox, runtime

    injector = None
    if args.chaos:
        injector = FaultInjector(
            seed=args.seed,
            serve_ingest_fault_rate=0.05,
            serve_commit_fault_rate=0.05,
            serve_poison_batches=[(0, 3), (0, 13)],
        )
    g, ctx, mem, mailbox, runtime = make_runtime(injector)
    batches = split_batches(stream, args.batch_size)
    print(f"replaying {len(stream)} events in {len(batches)} requests "
          f"at {args.load:g}x load")
    if injector is not None:
        with injector:
            results = replay(runtime, batches, load=args.load)
    else:
        results = replay(runtime, batches, load=args.load)

    statuses = {s: sum(1 for r in results if r.status == s)
                for s in ("ok", "shed", "timeout")}
    for key, value in runtime.stats().items():
        print(f"  {key:34s} {value}")
    print(f"  statuses: ok={statuses['ok']} shed={statuses['shed']} "
          f"timeout={statuses['timeout']}")
    lat = ctx.stats().latency
    if lat is not None:
        print(f"  latency: p50={lat.p50:.4g}s p99={lat.p99:.4g}s (n={lat.count})")
    if injector is not None:
        print(f"  chaos: {len(injector.log)} faults fired")
    runtime.close()  # seal the WAL: everything committed is now durable

    failures = []
    violations = (validate_state(g, ctx) + mem.validate() + mailbox.validate())
    if violations:
        failures.append("state violations: " + "; ".join(violations))
    st = runtime.ingest.stats
    if st.pushed != st.accepted + st.duplicates + st.quarantined_total:
        failures.append(
            f"ingestion ledger unbalanced: pushed={st.pushed} != "
            f"accepted={st.accepted} + duplicates={st.duplicates} + "
            f"quarantined={st.quarantined_total}"
        )
    if args.poison and args.check_equivalence:
        # Equivalence is defined over streams, not over shed work, so the
        # comparison replays run shed-free (unbounded queue, no deadline).
        _, _, mem_p, mailbox_p, runtime_p = make_runtime(reliable=True)
        replay(runtime_p, split_batches(stream, args.batch_size))
        _, _, mem_c, mailbox_c, runtime_c = make_runtime(reliable=True)
        replay(runtime_c, split_batches(clean, args.batch_size))
        same = (
            np.array_equal(mem_p.data.data, mem_c.data.data)
            and np.array_equal(mem_p.time, mem_c.time)
            and np.array_equal(mailbox_p.mail.data, mailbox_c.mail.data)
            and np.array_equal(mailbox_p.time, mailbox_c.time)
        )
        print(f"  poisoned-stream equivalence: "
              f"{'bit-identical' if same else 'DIVERGED'}")
        if not same:
            failures.append("poisoned-stream final state diverged from clean replay")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1 if args.assert_valid else 0
    if args.assert_valid:
        print("  all serving invariants hold")
    return 0


def _print_datasets() -> None:
    header = f"{'dataset':10s} {'|V|':>8s} {'|E|':>10s} {'d_v':>5s} {'d_e':>5s} {'max(t)':>10s}"
    print(header)
    print("-" * len(header))
    for name in available_datasets():
        s = get_dataset(name).stats()
        print(f"{name:10s} {s['|V|']:>8d} {s['|E|']:>10d} {s['d_v']:>5d} "
              f"{s['d_e']:>5d} {s['max(t)']:>10.2e}")


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve-cluster":
        return serve_cluster_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "scenarios":
        return scenarios_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.list_datasets:
        _print_datasets()
        return 0

    cfg = ExperimentConfig(
        dataset=args.dataset,
        model=args.model,
        framework=args.framework,
        placement=args.placement,
        batch_size=args.batch_size,
        epochs=args.epochs,
        num_layers=args.num_layers,
        num_nbrs=args.num_nbrs,
        dim_time=args.dim_time,
        dim_embed=args.dim_embed,
        dim_mem=args.dim_mem,
        sampling=args.sampling,
        lr=args.lr,
        seed=args.seed,
        device_capacity=args.capacity_mb * 1024 * 1024 if args.capacity_mb else None,
        store_hot_mb=args.store_hot_mb,
        store_cold_dir=args.store_cold_dir,
        store_prefetch_depth=args.prefetch_depth,
    )
    print(f"running {cfg.label()}  (batch={cfg.batch_size}, nbrs={cfg.num_nbrs}, "
          f"layers={cfg.num_layers}, epochs={cfg.epochs})")
    exp = Experiment(cfg)
    try:
        if args.resume or args.checkpoint_every is not None:
            result = exp.run_resilient_training(
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every or 50,
                resume=args.resume,
            )
        else:
            result = exp.run_training()
        for e in result.epochs:
            print(f"  epoch {e.epoch}: train {e.train_seconds:7.2f}s  "
                  f"loss {e.train_loss:.4f}  val AP {e.eval_ap:.4f}")
        print(f"best val AP: {result.best_ap:.4f}")
        if hasattr(result, "events"):
            print(f"resilience: {result.checkpoints} checkpoints, "
                  f"{result.retries} retries, {result.rollbacks} rollbacks, "
                  f"{result.redistributions} redistributions")
        if args.inference:
            seconds, ap = exp.run_test_inference()
            print(f"test inference: {seconds:.2f}s  AP {ap:.4f}")
        fstore = (exp.ctx.store if exp.ctx is not None
                  else getattr(exp.model, "feature_store", None))
        if cfg.uses_feature_store and fstore is not None:
            st = fstore.stats()
            print(f"feature store: stall {st.stall_seconds:.4f}s, "
                  f"saved {st.stall_saved_seconds:.4f}s "
                  f"({100 * st.stall_recovered_fraction:.1f}% recovered), "
                  f"bytes moved {st.bytes_moved}")
            for tier, t in st.tiers.items():
                print(f"  {tier:8s} hits {t.hits:>9d}  misses {t.misses:>9d}  "
                      f"in {t.bytes_in:>12d}B  out {t.bytes_out:>12d}B  "
                      f"evict {t.evictions:>7d}  demote {t.demotions:>7d}")
    finally:
        exp.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
