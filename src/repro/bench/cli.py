"""Command-line experiment runner.

Mirrors the artifact's training scripts (Appendix C): one command trains a
model/dataset/framework combination and reports per-epoch wall time and
average precision, optionally followed by timed test-set inference.

Examples::

    python -m repro.bench --model tgat --dataset wiki --framework tglite+opt
    python -m repro.bench --model tgn --dataset lastfm --placement cpu2gpu \
        --epochs 3 --inference
    python -m repro.bench --list-datasets
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..data import available_datasets, get_dataset
from .experiments import FRAMEWORKS, MODELS, Experiment, ExperimentConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Train/evaluate a TGNN under a chosen framework setting.",
    )
    parser.add_argument("--model", choices=MODELS, default="tgat")
    parser.add_argument("--dataset", choices=available_datasets(), default="wiki")
    parser.add_argument("--framework", choices=FRAMEWORKS, default="tglite+opt")
    parser.add_argument("--placement", choices=("gpu", "cpu2gpu"), default="gpu",
                        help="all-on-GPU or host-resident data (simulated)")
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--batch-size", type=int, default=300)
    parser.add_argument("--num-nbrs", type=int, default=10)
    parser.add_argument("--num-layers", type=int, default=2)
    parser.add_argument("--dim-embed", type=int, default=32)
    parser.add_argument("--dim-time", type=int, default=32)
    parser.add_argument("--dim-mem", type=int, default=32)
    parser.add_argument("--sampling", choices=("recent", "uniform"), default="recent")
    parser.add_argument("--lr", type=float, default=1e-3)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--inference", action="store_true",
                        help="after training, time test-set inference")
    parser.add_argument("--capacity-mb", type=int, default=None,
                        help="simulated device capacity in MiB (for OOM studies)")
    parser.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                        help="train under the fault-tolerant runtime, "
                             "checkpointing every N batches")
    parser.add_argument("--checkpoint-dir", default="checkpoints",
                        help="directory for the rolling checkpoint "
                             "(default: ./checkpoints)")
    parser.add_argument("--resume", action="store_true",
                        help="resume bit-exactly from the checkpoint in "
                             "--checkpoint-dir (implies the fault-tolerant "
                             "runtime)")
    parser.add_argument("--list-datasets", action="store_true",
                        help="print dataset statistics and exit")
    return parser


def _print_datasets() -> None:
    header = f"{'dataset':10s} {'|V|':>8s} {'|E|':>10s} {'d_v':>5s} {'d_e':>5s} {'max(t)':>10s}"
    print(header)
    print("-" * len(header))
    for name in available_datasets():
        s = get_dataset(name).stats()
        print(f"{name:10s} {s['|V|']:>8d} {s['|E|']:>10d} {s['d_v']:>5d} "
              f"{s['d_e']:>5d} {s['max(t)']:>10.2e}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_datasets:
        _print_datasets()
        return 0

    cfg = ExperimentConfig(
        dataset=args.dataset,
        model=args.model,
        framework=args.framework,
        placement=args.placement,
        batch_size=args.batch_size,
        epochs=args.epochs,
        num_layers=args.num_layers,
        num_nbrs=args.num_nbrs,
        dim_time=args.dim_time,
        dim_embed=args.dim_embed,
        dim_mem=args.dim_mem,
        sampling=args.sampling,
        lr=args.lr,
        seed=args.seed,
        device_capacity=args.capacity_mb * 1024 * 1024 if args.capacity_mb else None,
    )
    print(f"running {cfg.label()}  (batch={cfg.batch_size}, nbrs={cfg.num_nbrs}, "
          f"layers={cfg.num_layers}, epochs={cfg.epochs})")
    exp = Experiment(cfg)
    try:
        if args.resume or args.checkpoint_every is not None:
            result = exp.run_resilient_training(
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every or 50,
                resume=args.resume,
            )
        else:
            result = exp.run_training()
        for e in result.epochs:
            print(f"  epoch {e.epoch}: train {e.train_seconds:7.2f}s  "
                  f"loss {e.train_loss:.4f}  val AP {e.eval_ap:.4f}")
        print(f"best val AP: {result.best_ap:.4f}")
        if hasattr(result, "events"):
            print(f"resilience: {result.checkpoints} checkpoints, "
                  f"{result.retries} retries, {result.rollbacks} rollbacks, "
                  f"{result.redistributions} redistributions")
        if args.inference:
            seconds, ap = exp.run_test_inference()
            print(f"test inference: {seconds:.2f}s  AP {ap:.4f}")
    finally:
        exp.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
