"""APAN in the TGL framework style: mailbox attention + special-cased
mail delivery inside the memory modules (the paper notes TGL handles
APAN's propagation with dedicated code in its mailbox/memory classes).
"""

from __future__ import annotations

import math

import numpy as np

from ...core import TBatch
from ...core.graph import TGraph
from ...models.predictor import EdgePredictor
from ...nn import GRUCell, Linear, Module, TimeEncode
from ...tensor import Tensor, cat, no_grad
from ...tensor.device import get_device
from ..memory import TGLMailBox
from ..sampler import TGLSampler

__all__ = ["TGLAPAN"]


class TGLAPAN(Module):
    """TGL-baseline APAN: attention over mailbox slots, push delivery."""

    def __init__(
        self,
        g: TGraph,
        mailbox: TGLMailBox,
        device=None,
        dim_node: int = 0,
        dim_edge: int = 0,
        dim_time: int = 100,
        dim_embed: int = 100,
        dim_mem: int = 100,
        num_heads: int = 2,
        num_nbrs: int = 10,
        sampling: str = "recent",
    ):
        super().__init__()
        if dim_embed % num_heads != 0:
            raise ValueError("dim_embed must be divisible by num_heads")
        self.g = g
        self.device = get_device(device)
        self.mailbox = mailbox
        self.dim_edge = dim_edge
        self.dim_embed = dim_embed
        self.num_heads = num_heads
        self.sampler = TGLSampler(g, num_nbrs, sampling)
        self.time_encoder = TimeEncode(dim_time)
        self.w_q = Linear(dim_mem, dim_embed)
        self.w_k = Linear(mailbox.dim_mail + dim_time, dim_embed)
        self.w_v = Linear(mailbox.dim_mail + dim_time, dim_embed)
        self.w_out = Linear(dim_mem + dim_embed, dim_embed)
        self.gru_cell = GRUCell(mailbox.dim_mail + dim_time, dim_mem)
        self.feat_linear = Linear(dim_node, dim_mem) if dim_node else None
        self.edge_predictor = EdgePredictor(dim_embed)

    def reset_state(self) -> None:
        self.mailbox.reset()

    # ---- embedding --------------------------------------------------------------

    def compute_embeddings(self, batch: TBatch) -> Tensor:
        nodes = batch.nodes()
        times = batch.times()
        mb = self.mailbox
        mem = Tensor(mb.node_memory.data[nodes], device=mb.device).to(self.device)
        if self.feat_linear is not None and self.g.nfeat is not None:
            feat = Tensor(self.g.nfeat.data[nodes], device=self.g.nfeat.device).to(self.device)
            mem = mem + self.feat_linear(feat)
        mail = Tensor(mb.mailbox.data[nodes], device=mb.device).to(self.device)
        mail_ts = mb.mailbox_ts[nodes]
        deltas = times[:, None] - mail_ts
        tfeat = self.time_encoder(
            Tensor(deltas.reshape(-1).astype(np.float32), device=self.device)
        ).reshape(len(nodes), mb.slots, -1)

        n, slots = len(nodes), mb.slots
        heads, d_head = self.num_heads, self.dim_embed // self.num_heads
        kv_in = cat([mail, tfeat], dim=2)
        q = self.w_q(mem).reshape(n, 1, heads, d_head)
        k = self.w_k(kv_in).reshape(n, slots, heads, d_head)
        v = self.w_v(kv_in).reshape(n, slots, heads, d_head)
        scores = (q * k).sum(dim=3) * (1.0 / math.sqrt(d_head))
        attn = scores.softmax(dim=1)
        out = (v * attn.unsqueeze(3)).sum(dim=1).reshape(n, self.dim_embed)
        return self.w_out(cat([mem, out], dim=1)).relu()

    # ---- memory update & mail delivery ---------------------------------------------

    def _update_memory(self, batch: TBatch) -> None:
        nodes = np.unique(np.concatenate([batch.src, batch.dst]))
        mb = self.mailbox
        mail = Tensor(mb.mailbox.data[nodes], device=mb.device).to(self.device)
        mail_mean = mail.mean(dim=1)
        mail_ts = mb.mailbox_ts[nodes].max(axis=1)
        delta = mail_ts - mb.node_memory_ts[nodes]
        tfeat = self.time_encoder(Tensor(delta.astype(np.float32), device=self.device))
        prev = Tensor(mb.node_memory.data[nodes], device=mb.device).to(self.device)
        mem = self.gru_cell(cat([mail_mean, tfeat], dim=1), prev)
        fresh = mail_ts > mb.node_memory_ts[nodes]
        if fresh.any():
            idx = np.flatnonzero(fresh)
            mb.update_memory(nodes[idx], mem.detach()[idx], mail_ts[idx])

    def _deliver_mails(self, batch: TBatch) -> None:
        """Push batch mails to endpoints and their padded sampled neighbors."""
        with no_grad():
            mb = self.mailbox
            mem = mb.node_memory.data
            mem_src = Tensor(mem[batch.src], device=mb.device).to(self.device)
            mem_dst = Tensor(mem[batch.dst], device=mb.device).to(self.device)
            if self.g.efeat is not None and self.dim_edge:
                ef = Tensor(self.g.efeat.data[batch.eids], device=self.g.efeat.device).to(self.device)
                mail_s = cat([mem_src, mem_dst, ef], dim=1)
                mail_d = cat([mem_dst, mem_src, ef], dim=1)
            else:
                mail_s = cat([mem_src, mem_dst], dim=1)
                mail_d = cat([mem_dst, mem_src], dim=1)
            mails = cat([mail_s, mail_d], dim=0)
            endpoints = np.concatenate([batch.src, batch.dst])
            ep_times = np.tile(batch.ts, 2).astype(np.float64)

            mfg = self.sampler.sample_hop(self.device, endpoints, ep_times)
            recv_nodes = np.concatenate([mfg.srcnodes, endpoints])
            recv_rows = np.concatenate([mfg.dstindex, np.arange(len(endpoints))])
            recv_ts = ep_times[recv_rows]

            # The reduction happens host-side on the mailbox's device, so
            # the computed mails cross back over a pageable transfer.
            mails = mails.to(mb.device)

            # Mean-reduce duplicate deliveries per receiving node.
            uniq, inv = np.unique(recv_nodes, return_inverse=True)
            sums = np.zeros((len(uniq), mails.shape[1]), dtype=np.float32)
            np.add.at(sums, inv, mails.data[recv_rows])
            counts = np.bincount(inv, minlength=len(uniq)).astype(np.float32)
            mean_mail = sums / counts[:, None]
            ts_sums = np.zeros(len(uniq))
            np.add.at(ts_sums, inv, recv_ts)
            mean_ts = ts_sums / counts
            mb.update_mailbox(uniq, Tensor(mean_mail, device=mb.device), mean_ts)

    def forward(self, batch: TBatch):
        self._update_memory(batch)
        embeds = self.compute_embeddings(batch)
        self._deliver_mails(batch)
        return self.edge_predictor.score_batch(embeds, len(batch))
