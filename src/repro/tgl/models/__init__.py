"""TGL-baseline model implementations (MFG-based)."""

from .apan import TGLAPAN
from .attention import TGLAttnLayer
from .jodie import TGLJODIE
from .tgat import TGLTGAT
from .tgn import TGLTGN

__all__ = ["TGLAPAN", "TGLAttnLayer", "TGLJODIE", "TGLTGAT", "TGLTGN"]
