"""TGL's temporal attention layer over a sparse MFG.

Computationally equivalent to TGLite's
:class:`~repro.models.attention.TemporalAttnLayer` — both frameworks run
the same math, as the paper's near-parity baseline comparison requires —
but structured TGL-style: it consumes an MFG's string-keyed ``srcdata``
(rows for seeds followed by neighbor rows), uses the *fused* time deltas
the sampler precomputed, and always encodes time through the module (TGL
has no precompute operators to swap in).
"""

from __future__ import annotations

import math

import numpy as np

from ...nn import Dropout, LayerNorm, Linear, Module, TimeEncode
from ...tensor import Tensor, cat
from ...tensor.segment import segment_softmax, segment_sum
from ..mfg import MFG

__all__ = ["TGLAttnLayer"]


class TGLAttnLayer(Module):
    """One attention hop for the TGL baseline."""

    def __init__(
        self,
        num_heads: int,
        dim_node: int,
        dim_edge: int,
        dim_time: int,
        dim_out: int,
        dropout: float = 0.1,
    ):
        super().__init__()
        if dim_out % num_heads != 0:
            raise ValueError("dim_out must be divisible by num_heads")
        self.num_heads = num_heads
        self.dim_out = dim_out
        self.dim_edge = dim_edge
        self.time_encoder = TimeEncode(dim_time)
        self.w_q = Linear(dim_node + dim_time, dim_out)
        self.w_k = Linear(dim_node + dim_edge + dim_time, dim_out)
        self.w_v = Linear(dim_node + dim_edge + dim_time, dim_out)
        self.w_out = Linear(dim_node + dim_out, dim_out)
        self.layer_norm = LayerNorm(dim_out)
        self.dropout = Dropout(dropout)

    def forward(self, mfg: MFG) -> Tensor:
        n = mfg.num_dst
        h_all = mfg.srcdata["h"]
        h_dst = h_all[:n]
        if mfg.num_src == 0:
            zeros = Tensor(
                np.zeros((n, self.dim_out), dtype=np.float32), device=mfg.device
            )
            out = self.w_out(cat([zeros, h_dst], dim=1))
            return self.layer_norm(self.dropout(out.relu()))
        h_src = h_all[n:]

        tfeat_dst = self.time_encoder(Tensor(np.zeros(n, dtype=np.float32), device=mfg.device))
        # Deltas were fused into the MFG at sampling time.
        tfeat_src = self.time_encoder(
            Tensor(mfg.deltas.astype(np.float32), device=mfg.device)
        )

        zq = cat([h_dst, tfeat_dst], dim=1)
        if "f" in mfg.edata and self.dim_edge:
            zk = cat([h_src, mfg.edata["f"], tfeat_src], dim=1)
        else:
            zk = cat([h_src, tfeat_src], dim=1)

        heads, d_head = self.num_heads, self.dim_out // self.num_heads
        q = self.w_q(zq).reshape(n, heads, d_head)
        key = self.w_k(zk).reshape(mfg.num_src, heads, d_head)
        value = self.w_v(zk).reshape(mfg.num_src, heads, d_head)

        scores = (q[mfg.dstindex] * key).sum(dim=2) * (1.0 / math.sqrt(d_head))
        attn = segment_softmax(scores, mfg.dstindex, n)
        weighted = (value * attn.unsqueeze(2)).reshape(mfg.num_src, self.dim_out)
        reduced = segment_sum(weighted, mfg.dstindex, n)

        out = self.w_out(cat([reduced, h_dst], dim=1))
        return self.layer_norm(self.dropout(out.relu()))
