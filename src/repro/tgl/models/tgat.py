"""TGAT in the TGL framework style: list-of-MFGs, manual inter-layer flow."""

from __future__ import annotations

import numpy as np

from ...core import TBatch
from ...core.graph import TGraph
from ...models.predictor import EdgePredictor
from ...nn import Module, ModuleList
from ...tensor import Tensor
from ...tensor.device import get_device
from ..sampler import TGLSampler
from .attention import TGLAttnLayer

__all__ = ["TGLTGAT"]


class TGLTGAT(Module):
    """TGL-baseline TGAT.

    The trainer-facing interface (``forward(batch) -> (pos, neg)``,
    ``reset_state()``) matches the TGLite models so both run under the same
    harness; internally all data flow is MFG-based with eager pageable
    loading and no optimization operators.
    """

    def __init__(
        self,
        g: TGraph,
        device=None,
        dim_node: int = 0,
        dim_edge: int = 0,
        dim_time: int = 100,
        dim_embed: int = 100,
        num_layers: int = 2,
        num_heads: int = 2,
        num_nbrs: int = 10,
        dropout: float = 0.1,
        sampling: str = "recent",
    ):
        super().__init__()
        self.g = g
        self.device = get_device(device)
        self.num_layers = num_layers
        self.sampler = TGLSampler(g, num_nbrs, sampling)
        #: optional TieredFeatureStore routing the eager feature loads
        #: (set by the harness; None keeps the plain pageable gathers).
        self.feature_store = None
        layers = []
        for i in range(num_layers):
            layers.append(
                TGLAttnLayer(
                    num_heads=num_heads,
                    dim_node=dim_node if i == 0 else dim_embed,
                    dim_edge=dim_edge,
                    dim_time=dim_time,
                    dim_out=dim_embed,
                    dropout=dropout,
                )
            )
        self.layers = ModuleList(layers)
        self.edge_predictor = EdgePredictor(dim_embed)

    def reset_state(self) -> None:
        """TGAT keeps no persistent state."""

    def compute_embeddings(self, batch: TBatch) -> Tensor:
        mfgs = self.sampler.sample(self.device, batch.nodes(), batch.times(), self.num_layers)
        # Prepare inputs: raw features for the innermost hop's full padded
        # node set, edge features for every hop (all eagerly, pageable).
        mfgs[0].load("h", self.g.nfeat, which="all",
                     feature_store=self.feature_store)
        if self.g.efeat is not None:
            for mfg in mfgs:
                mfg.load_edges("f", self.g.efeat,
                               feature_store=self.feature_store)
        h = None
        for i, mfg in enumerate(mfgs):
            h = self.layers[i](mfg)
            if i + 1 < len(mfgs):
                mfgs[i + 1].srcdata["h"] = h
        return h

    def forward(self, batch: TBatch):
        embeds = self.compute_embeddings(batch)
        return self.edge_predictor.score_batch(embeds, len(batch))
