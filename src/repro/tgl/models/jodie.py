"""JODIE in the TGL framework style.

The paper notes TGL's design is not general enough for JODIE — the
framework has to expose JODIE-specific configuration (no sampling, RNN
updater, time-projection embedding).  This implementation mirrors that
shape: a degenerate zero-fanout MFG threads the batch nodes through the
same mailbox/updater machinery the other models use.
"""

from __future__ import annotations

import numpy as np

from ...core import TBatch
from ...core.graph import TGraph
from ...models.predictor import EdgePredictor
from ...nn import Linear, Module, TimeEncode
from ...tensor import Tensor, cat, no_grad
from ...tensor.device import get_device
from ..memory import RNNMemoryUpdater, TGLMailBox
from ..mfg import MFG

__all__ = ["TGLJODIE"]


class TGLJODIE(Module):
    """TGL-baseline JODIE: RNN memory with time-projected embeddings."""

    def __init__(
        self,
        g: TGraph,
        mailbox: TGLMailBox,
        device=None,
        dim_node: int = 0,
        dim_edge: int = 0,
        dim_time: int = 100,
        dim_embed: int = 100,
        dim_mem: int = 100,
    ):
        super().__init__()
        self.g = g
        self.device = get_device(device)
        self.mailbox = mailbox
        self.dim_edge = dim_edge
        #: optional TieredFeatureStore routing the eager feature loads
        #: (set by the harness; None keeps the plain pageable gathers).
        self.feature_store = None
        self.memory_updater = RNNMemoryUpdater(
            dim_mail=mailbox.dim_mail, dim_time=dim_time, dim_mem=dim_mem, dim_node=dim_node
        )
        self.time_encoder = TimeEncode(dim_time)
        self.embed_linear = Linear(dim_mem + dim_time, dim_embed)
        self.edge_predictor = EdgePredictor(dim_embed)

    def reset_state(self) -> None:
        self.mailbox.reset()

    def _identity_mfg(self, nodes: np.ndarray, times: np.ndarray) -> MFG:
        """Neighbor-less MFG: JODIE's special-case plumbing inside TGL."""
        empty_i = np.empty(0, dtype=np.int64)
        return MFG(
            self.device, nodes, times,
            empty_i, empty_i, np.empty(0, dtype=np.float64), empty_i,
        )

    def compute_embeddings(self, batch: TBatch) -> Tensor:
        nodes = batch.nodes()
        times = batch.times()
        mfg = self._identity_mfg(nodes, times)
        self.mailbox.prep_input_mails(mfg)
        if self.g.nfeat is not None:
            mfg.load("feat", self.g.nfeat, which="all",
                     feature_store=self.feature_store)
        self.memory_updater(mfg)
        mem = mfg.srcdata["h"]
        proj_delta = times - self.mailbox.node_memory_ts[nodes]
        tfeat = self.time_encoder(Tensor(proj_delta.astype(np.float32), device=self.device))
        return self.embed_linear(cat([mem, tfeat], dim=1))

    def _persist_memory(self) -> None:
        updater = self.memory_updater
        nids = updater.last_updated_nids
        mail_ts = updater.last_updated_ts
        mem_ts = self.mailbox.node_memory_ts[nids]
        fresh = mail_ts > mem_ts
        if fresh.any():
            idx = np.flatnonzero(fresh)
            self.mailbox.update_memory(
                nids[idx], updater.last_updated_mem[idx], mail_ts[idx]
            )

    def _store_batch_messages(self, batch: TBatch) -> None:
        with no_grad():
            mem = self.mailbox.node_memory.data
            peer_src = Tensor(mem[batch.dst], device=self.mailbox.device).to(self.device)
            peer_dst = Tensor(mem[batch.src], device=self.mailbox.device).to(self.device)
            if self.g.efeat is not None and self.dim_edge:
                efeats = Tensor(self.g.efeat.data[batch.eids], device=self.g.efeat.device).to(self.device)
                src_mail = cat([peer_src, efeats], dim=1)
                dst_mail = cat([peer_dst, efeats], dim=1)
            else:
                src_mail, dst_mail = peer_src, peer_dst
            mail = cat([src_mail, dst_mail], dim=0)
            nids = np.concatenate([batch.src, batch.dst])
            ts = np.tile(batch.ts, 2)
            self.mailbox.update_mailbox(nids, mail.cpu() if self.mailbox.device.is_cpu else mail, ts)

    def forward(self, batch: TBatch):
        embeds = self.compute_embeddings(batch)
        self._persist_memory()
        self._store_batch_messages(batch)
        return self.edge_predictor.score_batch(embeds, len(batch))
