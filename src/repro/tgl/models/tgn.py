"""TGN in the TGL framework style: MFG attention + TGLMailBox machinery."""

from __future__ import annotations

import numpy as np

from ...core import TBatch
from ...core.graph import TGraph
from ...models.predictor import EdgePredictor
from ...nn import Module, ModuleList
from ...tensor import Tensor, cat, no_grad
from ...tensor.device import get_device
from ..memory import GRUMemoryUpdater, TGLMailBox, latest_unique_messages
from ..sampler import TGLSampler
from .attention import TGLAttnLayer

__all__ = ["TGLTGN"]


class TGLTGN(Module):
    """TGL-baseline TGN: GRU memory + 2-hop padded attention.

    The memory lifecycle follows TGL's Listing 3: ``prep_input_mails``
    stages mail into the innermost MFG, the ``GRUMemoryUpdater`` computes
    new memory (recording ``last_updated_*``), the trainer-visible forward
    persists those and finally rebuilds the mailbox from this batch's
    edges with the unique/perm scatter sequence.
    """

    def __init__(
        self,
        g: TGraph,
        mailbox: TGLMailBox,
        device=None,
        dim_node: int = 0,
        dim_edge: int = 0,
        dim_time: int = 100,
        dim_embed: int = 100,
        dim_mem: int = 100,
        num_layers: int = 2,
        num_heads: int = 2,
        num_nbrs: int = 10,
        dropout: float = 0.1,
        sampling: str = "recent",
    ):
        super().__init__()
        self.g = g
        self.device = get_device(device)
        self.mailbox = mailbox
        self.dim_edge = dim_edge
        self.num_layers = num_layers
        self.sampler = TGLSampler(g, num_nbrs, sampling)
        #: optional TieredFeatureStore routing the eager feature loads
        #: (set by the harness; None keeps the plain pageable gathers).
        self.feature_store = None
        self.memory_updater = GRUMemoryUpdater(
            dim_mail=mailbox.dim_mail, dim_time=dim_time, dim_mem=dim_mem, dim_node=dim_node
        )
        layers = []
        for i in range(num_layers):
            layers.append(
                TGLAttnLayer(
                    num_heads=num_heads,
                    dim_node=dim_mem if i == 0 else dim_embed,
                    dim_edge=dim_edge,
                    dim_time=dim_time,
                    dim_out=dim_embed,
                    dropout=dropout,
                )
            )
        self.layers = ModuleList(layers)
        self.edge_predictor = EdgePredictor(dim_embed)

    def reset_state(self) -> None:
        self.mailbox.reset()

    def compute_embeddings(self, batch: TBatch) -> Tensor:
        mfgs = self.sampler.sample(self.device, batch.nodes(), batch.times(), self.num_layers)
        inner = mfgs[0]
        self.mailbox.prep_input_mails(inner)
        if self.g.nfeat is not None:
            inner.load("feat", self.g.nfeat, which="all",
                       feature_store=self.feature_store)
        self.memory_updater(inner)  # fills inner.srcdata['h']
        if self.g.efeat is not None:
            for mfg in mfgs:
                mfg.load_edges("f", self.g.efeat,
                               feature_store=self.feature_store)
        h = None
        for i, mfg in enumerate(mfgs):
            h = self.layers[i](mfg)
            if i + 1 < len(mfgs):
                mfgs[i + 1].srcdata["h"] = h
        return h

    def _persist_memory(self) -> None:
        updater = self.memory_updater
        nids = updater.last_updated_nids
        uniq, mem_rows, ts_rows = latest_unique_messages(
            nids, updater.last_updated_mem, updater.last_updated_ts
        )
        self.mailbox.update_memory(uniq, mem_rows, ts_rows)

    def _store_batch_messages(self, batch: TBatch) -> None:
        with no_grad():
            mem = self.mailbox.node_memory.data
            mem_src = Tensor(mem[batch.src], device=self.mailbox.device).to(self.device)
            mem_dst = Tensor(mem[batch.dst], device=self.mailbox.device).to(self.device)
            if self.g.efeat is not None and self.dim_edge:
                efeats = Tensor(self.g.efeat.data[batch.eids], device=self.g.efeat.device).to(self.device)
                src_mail = cat([mem_src, mem_dst, efeats], dim=1)
                dst_mail = cat([mem_dst, mem_src, efeats], dim=1)
            else:
                src_mail = cat([mem_src, mem_dst], dim=1)
                dst_mail = cat([mem_dst, mem_src], dim=1)
            mail = cat([src_mail, dst_mail], dim=0)
            nids = np.concatenate([batch.src, batch.dst])
            ts = np.tile(batch.ts, 2)
            self.mailbox.update_mailbox(nids, mail.cpu() if self.mailbox.device.is_cpu else mail, ts)

    def forward(self, batch: TBatch):
        embeds = self.compute_embeddings(batch)
        self._persist_memory()
        self._store_batch_messages(batch)
        return self.edge_predictor.score_batch(embeds, len(batch))
