"""Re-implementation of the TGL baseline framework (Zhou et al., VLDB'22).

Structurally faithful to the properties the paper measures against:
standalone padded MFGs with eager pageable device loading, a fused
sample+delta step, the combined MailBox memory component with the
unique/perm message scatter, and no CTDG-specific optimization operators.
"""

from .config import build_from_config, default_config, load_config
from .memory import GRUMemoryUpdater, RNNMemoryUpdater, TGLMailBox, latest_unique_messages
from .mfg import MFG
from .models import TGLAPAN, TGLAttnLayer, TGLJODIE, TGLTGAT, TGLTGN
from .sampler import TGLSampler

__all__ = [
    "MFG",
    "build_from_config",
    "default_config",
    "load_config",
    "TGLSampler",
    "TGLMailBox",
    "GRUMemoryUpdater",
    "RNNMemoryUpdater",
    "latest_unique_messages",
    "TGLAPAN",
    "TGLAttnLayer",
    "TGLJODIE",
    "TGLTGAT",
    "TGLTGN",
]
