"""MFG: the DGL-style message-flow graph block used by the TGL baseline.

Faithful to the structural properties the paper contrasts TBlocks against
(§3.2):

* **standalone** — no links between hops; the trainer passes a list of
  MFGs around and manages inter-layer data flow itself;
* **src+dst required upfront** — an MFG only exists *after* sampling, so
  destination-set optimizations (dedup/cache) have no place to attach;
* **device-resident** — all data associated with the MFG (features, edge
  features, memory, mail) is moved to the compute device eagerly at
  construction time over *pageable* transfers, which drives TGL's higher
  data-movement volume and device-memory footprint;
* **fused time deltas** — TGL computes ``t_dst - t_edge`` during sampling
  while it still holds the timestamps (the reason its time-encoding stage
  is slightly cheaper than TGLite's, §5.2.3);
* **string-keyed data dicts** — ``srcdata``/``dstdata`` mappings the model
  mutates directly (the error-prone bit Listing 3 illustrates).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..tensor import Tensor
from ..tensor.device import Device

__all__ = ["MFG"]


def _tiered_rows(feature_store, space: str, table: Tensor,
                 idx: np.ndarray) -> np.ndarray:
    """Resolve a gather through the tiered store, registering *table* as
    the space's authority on first sight (dtype of the table preserved)."""
    from ..store import ops as store_ops

    if space not in feature_store.spaces():
        feature_store.register_source(
            space, lambda nodes: np.asarray(table.data)[nodes],
            dim=int(table.shape[1]),
        )
    return store_ops.gather(
        feature_store, np.asarray(idx, dtype=np.int64), space=space,
        dtype=table.data.dtype,
    )


class MFG:
    """One hop of message flow for the TGL baseline (sparse DGL block).

    Args:
        device: compute device all loaded data is moved to.
        dstnodes: ``(n,)`` destination node ids (the hop's seeds).
        dsttimes: ``(n,)`` seed query times.
        srcnodes: ``(m,)`` sampled neighbor node ids (flat rows).
        eids: ``(m,)`` edge id per neighbor row.
        etimes: ``(m,)`` edge timestamp per neighbor row.
        dstindex: ``(m,)`` destination row each neighbor row belongs to.
    """

    def __init__(
        self,
        device: Device,
        dstnodes: np.ndarray,
        dsttimes: np.ndarray,
        srcnodes: np.ndarray,
        eids: np.ndarray,
        etimes: np.ndarray,
        dstindex: np.ndarray,
    ):
        self.device = device
        self.dstnodes = np.asarray(dstnodes, dtype=np.int64)
        self.dsttimes = np.asarray(dsttimes, dtype=np.float64)
        self.srcnodes = np.asarray(srcnodes, dtype=np.int64)
        self.eids = np.asarray(eids, dtype=np.int64)
        self.etimes = np.asarray(etimes, dtype=np.float64)
        self.dstindex = np.asarray(dstindex, dtype=np.int64)
        # Fused delta computation (done during sampling in real TGL).
        self.deltas = self.dsttimes[self.dstindex] - self.etimes

        self.srcdata: Dict[str, Tensor] = {}
        self.dstdata: Dict[str, Tensor] = {}
        self.edata: Dict[str, Tensor] = {}

    @property
    def num_dst(self) -> int:
        return len(self.dstnodes)

    @property
    def num_src(self) -> int:
        return len(self.srcnodes)

    def allnodes(self) -> np.ndarray:
        """Seed ids followed by neighbor-row ids (the next hop's seeds)."""
        return np.concatenate([self.dstnodes, self.srcnodes])

    def alltimes(self) -> np.ndarray:
        return np.concatenate([self.dsttimes, self.etimes])

    def load(self, key: str, store: Tensor, which: str = "dst",
             feature_store=None) -> Tensor:
        """Eagerly gather rows from *store* onto the device (pageable).

        Args:
            key: dict key the gathered tensor lands under.
            store: a graph-level tensor (features/memory/mail).
            which: ``'dst'`` -> ``dstdata[key]``; ``'src'`` ->
                ``srcdata[key]`` per neighbor row; ``'all'`` ->
                ``srcdata[key]`` for :meth:`allnodes`.
            feature_store: optional
                :class:`~repro.store.tiered.TieredFeatureStore` to
                resolve the gather through (space ``'tgl:<key>'``, with
                *store* registered as its authority on first use).  The
                store's tier model then replaces the pageable transfer —
                hot rows move nothing, misses pay the modeled cold +
                pinned legs — unifying the baseline's data loads with
                the TGLite front-ends.  Only safe for tables that do not
                mutate between batches (node/edge features).
        """
        if which == "dst":
            idx, target = self.dstnodes, self.dstdata
        elif which == "src":
            idx, target = self.srcnodes, self.srcdata
        elif which == "all":
            idx, target = self.allnodes(), self.srcdata
        else:
            raise ValueError(f"unknown gather target: {which!r}")
        if feature_store is not None:
            rows = _tiered_rows(feature_store, f"tgl:{key}", store, idx)
            target[key] = Tensor(rows, device=self.device)
        else:
            rows = store.data[idx]
            target[key] = Tensor(rows, device=store.device).to(self.device)
        return target[key]

    def load_edges(self, key: str, store: Tensor,
                   feature_store=None) -> Tensor:
        """Gather edge-feature rows onto the device (pageable).

        ``feature_store`` routes the gather through the tiered store
        exactly like :meth:`load` (space ``'tgl:edge:<key>'``, keyed by
        edge id).
        """
        if feature_store is not None:
            rows = _tiered_rows(feature_store, f"tgl:edge:{key}", store, self.eids)
            self.edata[key] = Tensor(rows, device=self.device)
        else:
            rows = store.data[self.eids]
            self.edata[key] = Tensor(rows, device=store.device).to(self.device)
        return self.edata[key]

    def __repr__(self) -> str:
        return f"MFG(dst={self.num_dst}, src={self.num_src}, device='{self.device}')"
