"""TGL's temporal sampler: multi-hop, standalone MFGs, fused deltas.

Shares the low-level temporal sampling kernel with TGLite's
:class:`~repro.core.sampler.TSampler` (both frameworks used equivalent
parallel C++ samplers in the paper, so kernel parity keeps the comparison
about the framework structure, not the sampler).  The differences are
structural: TGL samples *all hops up front* from the raw seed set — no
opportunity to dedup/cache-shrink between hops — and emits standalone MFGs
carrying precomputed time deltas, returned innermost-first.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.graph import TGraph
from ..core.kernels import SampleResult
from ..core.sampler import TSampler
from ..tensor.device import Device
from .mfg import MFG

__all__ = ["TGLSampler"]


class TGLSampler:
    """Multi-hop temporal sampler for the TGL baseline.

    Args:
        g: temporal graph.
        num_nbrs: neighbors sampled per seed per hop.
        strategy: ``'recent'`` or ``'uniform'``.
        seed: RNG seed for uniform sampling.
    """

    def __init__(self, g: TGraph, num_nbrs: int, strategy: str = "recent", seed: int = 0):
        self.g = g
        self._kernel = TSampler(num_nbrs, strategy, seed=seed)

    @property
    def num_nbrs(self) -> int:
        return self._kernel.num_nbrs

    @property
    def strategy(self) -> str:
        return self._kernel.strategy

    def sample_hop(self, device: Device, nodes: np.ndarray, times: np.ndarray) -> MFG:
        """Sample one hop for the given seeds into a standalone MFG."""
        nodes = np.asarray(nodes, dtype=np.int64)
        times = np.asarray(times, dtype=np.float64)
        result: SampleResult = self._kernel.sample_arrays(self.g.csr(), nodes, times)
        return MFG(device, nodes, times, *result)

    def sample(
        self,
        device: Device,
        nodes: np.ndarray,
        times: np.ndarray,
        num_hops: int,
    ) -> List[MFG]:
        """Sample *num_hops* hops from the seeds; returns innermost-first.

        Each deeper hop's seeds are the previous hop's seeds followed by
        its neighbor rows — duplicates included, since TGL recomputes
        embeddings for repeated (node, time) pairs.
        """
        mfgs: List[MFG] = []
        cur_nodes = np.asarray(nodes, dtype=np.int64)
        cur_times = np.asarray(times, dtype=np.float64)
        for _ in range(num_hops):
            mfg = self.sample_hop(device, cur_nodes, cur_times)
            mfgs.append(mfg)
            cur_nodes = mfg.allnodes()
            cur_times = mfg.alltimes()
        mfgs.reverse()
        return mfgs
