"""TGL's configuration-file interface.

The paper's critique of TGL (§1, footnote 1) is that "users interact with
the framework via configuration files" rather than a programming
interface — model architecture, sampling, memory, and training settings
all live in a YAML config per model.  This module reproduces that
interaction style faithfully: a TGL model is *built from a config
mapping*, with the JODIE special-casing the paper calls out (its config
must expose settings no other model needs).

Config schema (mirroring TGL's ``config/*.yml`` structure)::

    {
      "sampling": [{"layer": 2, "neighbor": [10, 10], "strategy": "recent"}],
      "memory":   [{"type": "gru", "dim_memory": 100, "mailbox_size": 1,
                    "deliver_to": "self"}],
      "gnn":      [{"arch": "transformer_attention", "layer": 2, "att_head": 2,
                    "dim_time": 100, "dim_out": 100}],
      "train":    [{"epoch": 10, "batch_size": 600, "lr": 1e-4, "dropout": 0.1}],
    }

Files are JSON (this environment has no YAML parser; the structure is
what matters).  See ``configs/`` for one file per model.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional, Tuple

from ..core.graph import TGraph
from .memory import TGLMailBox
from .models import TGLAPAN, TGLJODIE, TGLTGAT, TGLTGN

__all__ = ["load_config", "build_from_config", "default_config", "CONFIG_DIR"]

#: bundled per-model config files (one per model, as in TGL's repo).
CONFIG_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))), "configs")


def load_config(path: str) -> Dict[str, Any]:
    """Read a TGL-style config file (JSON)."""
    with open(path) as fh:
        return json.load(fh)


def _section(config: Dict[str, Any], name: str) -> Dict[str, Any]:
    rows = config.get(name) or [{}]
    return rows[0]


def default_config(model: str) -> Dict[str, Any]:
    """The bundled configuration for one of the four models."""
    path = os.path.join(CONFIG_DIR, f"{model.upper()}.json")
    if not os.path.exists(path):
        raise FileNotFoundError(f"no bundled config for {model!r} at {path}")
    return load_config(path)


def build_from_config(
    config: Dict[str, Any],
    g: TGraph,
    dim_node: int,
    dim_edge: int,
    device=None,
) -> Tuple[object, Dict[str, Any]]:
    """Instantiate a TGL model from a config mapping.

    Returns ``(model, train_settings)`` where the latter is the config's
    ``train`` section (epochs, batch size, lr, ...), which the caller's
    training script consumes — exactly the TGL workflow.
    """
    sampling = _section(config, "sampling")
    memory = _section(config, "memory")
    gnn = _section(config, "gnn")
    train = dict(_section(config, "train"))

    arch = gnn.get("arch", "transformer_attention")
    num_layers = int(gnn.get("layer", sampling.get("layer", 1) or 1))
    neighbors = sampling.get("neighbor") or [10]
    num_nbrs = int(neighbors[0]) if neighbors else 10
    strategy = sampling.get("strategy", "recent")
    dim_time = int(gnn.get("dim_time", 100))
    dim_out = int(gnn.get("dim_out", 100))
    heads = int(gnn.get("att_head", 2))
    dropout = float(train.get("dropout", 0.1))

    mem_type = memory.get("type", "none")
    dim_mem = int(memory.get("dim_memory", dim_out))
    mailbox_size = int(memory.get("mailbox_size", 1))

    common = dict(device=device, dim_node=dim_node, dim_edge=dim_edge,
                  dim_time=dim_time, dim_embed=dim_out)

    if arch == "identity":
        # JODIE: no GNN; the config must special-case it (the paper's
        # observation about TGL's generality).
        if mem_type != "rnn":
            raise ValueError("identity arch requires the rnn memory updater (JODIE)")
        mailbox = TGLMailBox(g.num_nodes, dim_mem, dim_mem + dim_edge,
                             slots=mailbox_size, device=device)
        return TGLJODIE(g, mailbox, dim_mem=dim_mem, **common), train

    if arch != "transformer_attention":
        raise ValueError(f"unknown gnn arch: {arch!r}")

    if mem_type == "none":
        model = TGLTGAT(g, num_layers=num_layers, num_heads=heads,
                        num_nbrs=num_nbrs, dropout=dropout,
                        sampling=strategy, **common)
        return model, train

    if mem_type == "gru":
        mailbox = TGLMailBox(g.num_nodes, dim_mem, 2 * dim_mem + dim_edge,
                             slots=mailbox_size, device=device)
        if memory.get("deliver_to", "self") == "neighbors":
            model = TGLAPAN(g, mailbox, dim_mem=dim_mem, num_heads=heads,
                            num_nbrs=num_nbrs, sampling=strategy, **common)
        else:
            model = TGLTGN(g, mailbox, dim_mem=dim_mem, num_layers=num_layers,
                           num_heads=heads, num_nbrs=num_nbrs, dropout=dropout,
                           sampling=strategy, **common)
        return model, train

    raise ValueError(f"unknown memory type: {mem_type!r}")
