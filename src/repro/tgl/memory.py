"""TGL's memory/mailbox module, following the structure of Listing 3.

Unlike TGLite (where Memory/Mailbox live on the TGraph and blocks expose
``mem_data()``/``mail()`` accessors), TGL keeps both inside one ``MailBox``
component that the trainer threads through every step: the model must load
mail into the MFG's string-keyed dicts before the updater runs, stash
``last_updated_*`` state on the updater, and call the unique/perm scatter
sequence to store the latest message per node.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import GRUCell, Linear, Module, RNNCell, TimeEncode
from ..tensor import Tensor, cat
from ..tensor.device import Device, get_device
from .mfg import MFG

__all__ = ["TGLMailBox", "GRUMemoryUpdater", "RNNMemoryUpdater", "latest_unique_messages"]


def latest_unique_messages(nids: np.ndarray, mail: Tensor, ts: np.ndarray):
    """TGL's unique/perm trick: latest message per unique node (Listing 3 T).

    Args:
        nids: node id per message row (duplicates expected).
        mail: ``(rows, d)`` message tensor, chronologically ordered so a
            later row supersedes an earlier one for the same node.
        ts: delivery timestamp per row.

    Returns ``(uniq_nids, mail_rows, ts_rows)``.
    """
    uniq, inv = np.unique(nids, return_inverse=True)
    perm = np.zeros(len(uniq), dtype=np.int64)
    # Later rows overwrite earlier ones, leaving the last (latest) row index.
    perm[inv] = np.arange(len(inv), dtype=np.int64)
    return uniq, mail[perm], ts[perm]


class TGLMailBox:
    """Combined node-memory + mailbox storage in the TGL style.

    Args:
        num_nodes: node count.
        dim_mem: memory width.
        dim_mail: message width.
        slots: mailbox slots per node (APAN uses 10).
        device: where storage lives.
    """

    def __init__(
        self,
        num_nodes: int,
        dim_mem: int,
        dim_mail: int,
        slots: int = 1,
        device=None,
    ):
        self.num_nodes = num_nodes
        self.dim_mem = dim_mem
        self.dim_mail = dim_mail
        self.slots = slots
        self.device = get_device(device)
        self.node_memory = Tensor(np.zeros((num_nodes, dim_mem), dtype=np.float32), device=self.device)
        self.node_memory_ts = np.zeros(num_nodes, dtype=np.float64)
        mail_shape = (num_nodes, dim_mail) if slots == 1 else (num_nodes, slots, dim_mail)
        self.mailbox = Tensor(np.zeros(mail_shape, dtype=np.float32), device=self.device)
        ts_shape = (num_nodes,) if slots == 1 else (num_nodes, slots)
        self.mailbox_ts = np.zeros(ts_shape, dtype=np.float64)
        self._next_slot = np.zeros(num_nodes, dtype=np.int64) if slots > 1 else None

    def reset(self) -> None:
        self.node_memory.data[...] = 0.0
        self.node_memory_ts[...] = 0.0
        self.mailbox.data[...] = 0.0
        self.mailbox_ts[...] = 0.0
        if self._next_slot is not None:
            self._next_slot[...] = 0

    # ---- MFG staging (eager device loads, pageable) ------------------------------

    def prep_input_mails(self, mfg: MFG) -> None:
        """Gather memory/mail/timestamps for the MFG's nodes onto its device."""
        nodes = mfg.allnodes()
        mfg.srcdata["mem"] = Tensor(
            self.node_memory.data[nodes], device=self.device
        ).to(mfg.device)
        mfg.srcdata["mail"] = Tensor(
            self.mailbox.data[nodes], device=self.device
        ).to(mfg.device)
        mfg.srcdata["mem_ts"] = self.node_memory_ts[nodes]
        mfg.srcdata["mail_ts"] = self.mailbox_ts[nodes]

    # ---- state updates ----------------------------------------------------------

    def update_memory(self, nids: np.ndarray, memory: Tensor, ts: np.ndarray) -> None:
        """Persist updater outputs for (already unique) node ids.

        Cross-device writes pay the (pageable) simulated transfer cost —
        TGL has no pinned write-back path.
        """
        if isinstance(memory, Tensor) and memory.device is not self.device:
            memory = memory.to(self.device)
        self.node_memory.data[nids] = memory.data if isinstance(memory, Tensor) else memory
        self.node_memory_ts[nids] = ts

    def update_mailbox(self, nids: np.ndarray, mail: Tensor, ts: np.ndarray) -> None:
        """Store the latest message per node (unique/perm sequence).

        Cross-device writes pay the (pageable) simulated transfer cost.
        """
        if isinstance(mail, Tensor) and mail.device is not self.device:
            mail = mail.to(self.device)
        uniq, mail_rows, ts_rows = latest_unique_messages(nids, mail, ts)
        mail_data = mail_rows.data if isinstance(mail_rows, Tensor) else mail_rows
        if self.slots == 1:
            self.mailbox.data[uniq] = mail_data
            self.mailbox_ts[uniq] = ts_rows
        else:
            cursors = self._next_slot[uniq]
            self.mailbox.data[uniq, cursors] = mail_data
            self.mailbox_ts[uniq, cursors] = ts_rows
            self._next_slot[uniq] = (cursors + 1) % self.slots


class GRUMemoryUpdater(Module):
    """TGL's GRU memory updater (Listing 3 region R).

    Consumes an MFG pre-staged by :meth:`TGLMailBox.prep_input_mails`,
    writes the updated memory into ``mfg.srcdata['h']`` (merged with node
    features through a linear map), and keeps ``last_updated_*`` arrays for
    the trainer to persist after the step.
    """

    def __init__(self, dim_mail: int, dim_time: int, dim_mem: int, dim_node: int):
        super().__init__()
        self.time_encoder = TimeEncode(dim_time)
        self.gru_cell = GRUCell(dim_mail + dim_time, dim_mem)
        self.linear = Linear(dim_node, dim_mem) if dim_node else None
        self.last_updated_nids: Optional[np.ndarray] = None
        self.last_updated_ts: Optional[np.ndarray] = None
        self.last_updated_mem: Optional[Tensor] = None

    def forward(self, mfg: MFG) -> Tensor:
        delta = mfg.srcdata["mail_ts"] - mfg.srcdata["mem_ts"]
        tfeat = self.time_encoder(Tensor(delta.astype(np.float32), device=mfg.device))
        mail = cat([mfg.srcdata["mail"], tfeat], dim=1)
        mem = self.gru_cell(mail, mfg.srcdata["mem"])
        self.last_updated_nids = mfg.allnodes()
        self.last_updated_ts = mfg.srcdata["mail_ts"]
        self.last_updated_mem = mem.detach()
        if self.linear is not None and "feat" in mfg.srcdata:
            mem = mem + self.linear(mfg.srcdata["feat"])
        mfg.srcdata["h"] = mem
        return mem


class RNNMemoryUpdater(Module):
    """Vanilla RNN variant of the updater (used by JODIE in TGL)."""

    def __init__(self, dim_mail: int, dim_time: int, dim_mem: int, dim_node: int):
        super().__init__()
        self.time_encoder = TimeEncode(dim_time)
        self.rnn_cell = RNNCell(dim_mail + dim_time, dim_mem)
        self.linear = Linear(dim_node, dim_mem) if dim_node else None
        self.last_updated_nids: Optional[np.ndarray] = None
        self.last_updated_ts: Optional[np.ndarray] = None
        self.last_updated_mem: Optional[Tensor] = None

    def forward(self, mfg: MFG) -> Tensor:
        delta = mfg.srcdata["mail_ts"] - mfg.srcdata["mem_ts"]
        tfeat = self.time_encoder(Tensor(delta.astype(np.float32), device=mfg.device))
        mail = cat([mfg.srcdata["mail"], tfeat], dim=1)
        mem = self.rnn_cell(mail, mfg.srcdata["mem"])
        self.last_updated_nids = mfg.allnodes()
        self.last_updated_ts = mfg.srcdata["mail_ts"]
        self.last_updated_mem = mem.detach()
        if self.linear is not None and "feat" in mfg.srcdata:
            mem = mem + self.linear(mfg.srcdata["feat"])
        mfg.srcdata["h"] = mem
        return mem
