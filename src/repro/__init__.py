"""Reproduction of TGLite (ASPLOS 2024) on a pure-numpy substrate.

Subpackages:

* :mod:`repro.tensor` — numpy tensor backend with autograd and a simulated
  CPU/GPU device model (replaces PyTorch).
* :mod:`repro.nn` — neural-network substrate (modules, layers, optimizers,
  the TimeEncode module).
* :mod:`repro.core` — the TGLite framework itself: TGraph/TBatch/TBlock/
  TSampler/Memory/Mailbox plus the block operators.
* :mod:`repro.tgl` — a faithful structural re-implementation of the TGL
  baseline framework (MFG-based) used for all speedup comparisons.
* :mod:`repro.models` — TGAT, TGN, JODIE, and APAN built on TGLite.
* :mod:`repro.data` — synthetic CTDG dataset generators matching the shape
  of the paper's benchmarks, chronological splits, negative sampling.
* :mod:`repro.bench` — training/inference harness, metrics, timing
  breakdowns, and the experiment runner behind ``benchmarks/``.
"""

__version__ = "0.1.0"

from . import core, nn, tensor

__all__ = ["core", "nn", "tensor", "__version__"]
