"""Evaluation-protocol splits beyond the basic chronological cut.

The TGAT/TGN evaluation protocol distinguishes **transductive** link
prediction (test edges among nodes seen during training) from
**inductive** prediction (test edges involving nodes *hidden* from
training).  This module implements the standard construction: sample a
fraction of nodes as "unseen", drop every training-window edge touching
them, and partition the evaluation edges by whether they touch an unseen
node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["InductiveSplit", "inductive_split"]


@dataclass
class InductiveSplit:
    """Masks and node sets for inductive evaluation.

    Attributes:
        unseen_nodes: node ids hidden from the training window.
        train_mask: boolean over all edges — chronologically in the
            training window AND touching no unseen node.
        test_transductive_mask: evaluation-window edges among seen nodes.
        test_inductive_mask: evaluation-window edges touching >= 1 unseen
            node (the hard, new-node case).
    """

    unseen_nodes: np.ndarray
    train_mask: np.ndarray
    test_transductive_mask: np.ndarray
    test_inductive_mask: np.ndarray

    @property
    def num_train_edges(self) -> int:
        return int(self.train_mask.sum())

    def summary(self) -> dict:
        return {
            "unseen nodes": len(self.unseen_nodes),
            "train edges": int(self.train_mask.sum()),
            "test transductive": int(self.test_transductive_mask.sum()),
            "test inductive": int(self.test_inductive_mask.sum()),
        }


def inductive_split(
    dataset,
    unseen_fraction: float = 0.10,
    train_fraction: float = 0.70,
    seed: int = 2020,
) -> InductiveSplit:
    """Build the TGAT-style inductive split for *dataset*.

    Args:
        dataset: a :class:`~repro.data.dataset.TemporalDataset`.
        unseen_fraction: fraction of nodes (sampled among nodes that appear
            in the evaluation window) hidden from training.
        train_fraction: chronological boundary of the training window.
        seed: RNG seed for the unseen-node draw.

    Returns an :class:`InductiveSplit`.  Training code should iterate only
    edges where ``train_mask`` holds; inductive AP is computed on
    ``test_inductive_mask`` edges.
    """
    if not 0.0 < unseen_fraction < 1.0:
        raise ValueError("unseen_fraction must be in (0, 1)")
    m = dataset.num_edges
    boundary = int(m * train_fraction)
    src, dst = dataset.src, dataset.dst

    eval_nodes = np.unique(np.concatenate([src[boundary:], dst[boundary:]]))
    rng = np.random.default_rng(seed)
    num_unseen = max(1, int(len(eval_nodes) * unseen_fraction))
    unseen = rng.choice(eval_nodes, size=num_unseen, replace=False)
    unseen_set = np.zeros(dataset.num_nodes, dtype=bool)
    unseen_set[unseen] = True

    touches_unseen = unseen_set[src] | unseen_set[dst]
    in_train_window = np.arange(m) < boundary
    train_mask = in_train_window & ~touches_unseen
    in_eval_window = ~in_train_window
    return InductiveSplit(
        unseen_nodes=np.sort(unseen),
        train_mask=train_mask,
        test_transductive_mask=in_eval_window & ~touches_unseen,
        test_inductive_mask=in_eval_window & touches_unseen,
    )
