"""Synthetic CTDG generators matching the shape of the paper's benchmarks.

The original evaluation uses Wiki/MOOC/Reddit/LastFM (JODIE), WikiTalk
(SNAP), and GDELT (TGL's preparation), none of which can be downloaded in
this offline environment.  These generators produce seeded graphs that
preserve the statistics the paper's speedups depend on:

* **bipartiteness** (all four standard sets are user-item graphs),
* **power-law popularity and activity** (hub items are re-sampled often,
  which drives dedup/cache hit rates),
* **repeat interactions** (users returning to prior items — LastFM's
  defining trait and the reason its optimizations pay off most),
* **edges-per-node density and timestamp span**, scaled down so a numpy
  substrate finishes epochs in seconds (scale factors recorded per
  dataset in :data:`DATASETS` and reported in Table 3's bench).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "GeneratorSpec",
    "DATASETS",
    "derive_rng",
    "generate_edges",
    "generate_features",
    "generate_labels",
]


def derive_rng(seed: int, *path) -> np.random.Generator:
    """One independent :class:`numpy.random.Generator` per ``(seed, path)``.

    The path components (strings or ints) are folded into a
    :class:`numpy.random.SeedSequence` entropy list, so ``derive_rng(7,
    "scenario", "drift", "edges")`` and ``derive_rng(7, "scenario",
    "drift", "labels")`` are decorrelated streams derived from the same
    user-facing seed — no module-level or global RNG state involved.
    Both the synthetic datasets and :mod:`repro.scenarios` generators
    draw their streams through this one derivation scheme, so composing
    them under a shared seed never causes crosstalk.
    """
    entropy = [int(seed) & 0xFFFFFFFF]
    for part in path:
        if isinstance(part, (int, np.integer)):
            entropy.append(int(part) & 0xFFFFFFFF)
        else:
            entropy.append(zlib.crc32(str(part).encode("utf-8")) & 0xFFFFFFFF)
    return np.random.default_rng(np.random.SeedSequence(entropy))


@dataclass(frozen=True)
class GeneratorSpec:
    """Recipe for one synthetic dataset.

    Attributes mirror Table 3's columns plus generation knobs.
    """

    name: str
    num_nodes: int
    num_edges: int
    dim_node: int
    dim_edge: int
    t_max: float
    bipartite: bool
    #: fraction of "source" nodes in a bipartite graph (users).
    user_fraction: float = 0.85
    #: probability a user repeats a previously-visited partner.
    repeat_prob: float = 0.6
    #: Zipf-ish exponent for partner popularity.
    popularity_exp: float = 1.1
    #: Zipf-ish exponent for user activity.
    activity_exp: float = 1.0
    seed: int = 17
    #: paper-scale counts, for Table 3 reporting.
    paper_nodes: int = 0
    paper_edges: int = 0
    #: node features randomly generated (paper's * marker).
    random_nfeat: bool = True
    #: edge features randomly generated (paper's dagger marker).
    random_efeat: bool = True


#: Registry of dataset recipes.  Node/edge counts are the paper's divided
#: by the scale factors documented in DESIGN.md (~20x nodes, ~50x edges for
#: the standard sets; ~200x / ~2000x for the large-scale sets).
DATASETS: Dict[str, GeneratorSpec] = {
    "wiki": GeneratorSpec(
        name="wiki", num_nodes=461, num_edges=3149, dim_node=172, dim_edge=172,
        t_max=2.7e6, bipartite=True, repeat_prob=0.55,
        paper_nodes=9227, paper_edges=157474, random_efeat=False,
    ),
    "mooc": GeneratorSpec(
        name="mooc", num_nodes=357, num_edges=8234, dim_node=128, dim_edge=128,
        t_max=2.6e6, bipartite=True, user_fraction=0.93, repeat_prob=0.7,
        paper_nodes=7144, paper_edges=411749,
    ),
    "reddit": GeneratorSpec(
        name="reddit", num_nodes=549, num_edges=13448, dim_node=172, dim_edge=172,
        t_max=2.7e6, bipartite=True, user_fraction=0.91, repeat_prob=0.65,
        paper_nodes=10984, paper_edges=672447, random_efeat=False,
    ),
    "lastfm": GeneratorSpec(
        name="lastfm", num_nodes=99, num_edges=25862, dim_node=128, dim_edge=128,
        t_max=1.4e8, bipartite=True, user_fraction=0.5, repeat_prob=0.8,
        paper_nodes=1980, paper_edges=1293103,
    ),
    "wikitalk": GeneratorSpec(
        name="wikitalk", num_nodes=5700, num_edges=39165, dim_node=128, dim_edge=128,
        t_max=1.2e9, bipartite=False, repeat_prob=0.5, popularity_exp=1.3,
        paper_nodes=1140149, paper_edges=7833140,
    ),
    "gdelt": GeneratorSpec(
        name="gdelt", num_nodes=1042, num_edges=95645, dim_node=413, dim_edge=186,
        t_max=1.8e5, bipartite=False, repeat_prob=0.75, popularity_exp=1.2,
        paper_nodes=16682, paper_edges=191290882,
        random_nfeat=False, random_efeat=False,
    ),
}


def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def generate_edges(
    spec: GeneratorSpec, rng: Optional[np.random.Generator] = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate ``(src, dst, ts)`` arrays for *spec* (deterministic per seed).

    Edge endpoints follow a repeat-or-explore process: each event picks an
    active user; with probability ``repeat_prob`` the user revisits one of
    its recent partners (recency-biased), otherwise it samples a partner by
    global popularity.  Timestamps are a Poisson arrival process rescaled
    to ``[0, t_max]``.

    Args:
        rng: injectable generator (e.g. from :func:`derive_rng`); the
            default preserves the historical per-spec stream byte-for-byte.
    """
    rng = np.random.default_rng(spec.seed) if rng is None else rng
    n = spec.num_nodes
    if spec.bipartite:
        num_users = max(1, int(round(n * spec.user_fraction)))
        num_items = max(1, n - num_users)
        users = np.arange(num_users)
        items = np.arange(num_users, num_users + num_items)
    else:
        users = np.arange(n)
        items = users

    activity = _zipf_weights(len(users), spec.activity_exp)
    popularity = _zipf_weights(len(items), spec.popularity_exp)

    m = spec.num_edges
    src = rng.choice(users, size=m, p=activity)
    dst = items[rng.choice(len(items), size=m, p=popularity)]

    # Repeat interactions: replace a fraction of picks with a revisit of
    # the same user's most recent distinct partners.
    history: Dict[int, list] = {}
    repeat_draws = rng.random(m)
    pick_draws = rng.random(m)
    for i in range(m):
        u = int(src[i])
        hist = history.get(u)
        if hist and repeat_draws[i] < spec.repeat_prob:
            # Recency bias: geometric over the last few partners.
            idx = min(int(-np.log(max(pick_draws[i], 1e-12)) * 1.5), len(hist) - 1)
            dst[i] = hist[-1 - idx]
        else:
            if hist is None:
                hist = []
                history[u] = hist
            hist.append(int(dst[i]))
            if len(hist) > 32:
                del hist[0]
        if not spec.bipartite and dst[i] == u:
            dst[i] = items[(int(dst[i]) + 1) % len(items)]

    gaps = rng.exponential(scale=1.0, size=m)
    ts = np.cumsum(gaps)
    ts = ts / ts[-1] * spec.t_max
    return src.astype(np.int64), dst.astype(np.int64), ts.astype(np.float64)


def generate_labels(
    spec: GeneratorSpec,
    src: np.ndarray,
    ts: np.ndarray,
    positive_rate: float = 0.05,
    noise_keep: float = 0.8,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Dynamic per-interaction source-node labels (state-change events).

    The JODIE datasets carry rare dynamic labels (Wikipedia user banned,
    MOOC student dropout) used for the node-classification task.  This
    generator plants a *temporal* signal: an interaction is positive when
    the source user's gap since its previous interaction falls in the
    shortest ``positive_rate`` tail of all gaps (activity bursts are known
    precursors of bans/dropouts), kept with probability ``noise_keep``.

    Because bursts concentrate on high-activity users in a scaled-down
    graph, static node identity also correlates with these labels — a
    shortcut real datasets do not offer to the same degree; see
    ``examples/dropout_prediction_nodeclass.py`` for the honest framing.
    """
    rng = np.random.default_rng(spec.seed + 2) if rng is None else rng
    m = len(src)
    last_seen: dict = {}
    gaps = np.full(m, np.inf)
    for i in range(m):
        u = int(src[i])
        prev = last_seen.get(u)
        if prev is not None:
            gaps[i] = ts[i] - prev
        last_seen[u] = ts[i]
    finite = np.isfinite(gaps)
    if not finite.any():
        return np.zeros(m, dtype=np.int64)
    cutoff = np.quantile(gaps[finite], positive_rate)
    labels = (finite & (gaps <= cutoff) & (rng.random(m) < noise_keep)).astype(np.int64)
    return labels


def generate_features(
    spec: GeneratorSpec,
    num_edges: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``(node_features, edge_features)`` for *spec*.

    The paper marks most features as randomly generated anyway; for the
    datasets with real features (Wiki/Reddit edge text vectors, GDELT
    embeddings) we substitute seeded Gaussians of the same width, which
    preserves all compute/transfer behaviour (documented in DESIGN.md).
    """
    rng = np.random.default_rng(spec.seed + 1) if rng is None else rng
    m = spec.num_edges if num_edges is None else num_edges
    nfeat = rng.standard_normal((spec.num_nodes, spec.dim_node)).astype(np.float32)
    efeat = rng.standard_normal((m, spec.dim_edge)).astype(np.float32)
    return nfeat, efeat
