"""Datasets: synthetic CTDG generators, container, splits, and negatives."""

from .analysis import WorkloadProfile, batch_duplication_ratio, profile_dataset
from .dataset import TemporalDataset, available_datasets, get_dataset
from .negative import NegativeSampler
from .split import InductiveSplit, inductive_split
from .synthetic import (
    derive_rng,
    DATASETS,
    GeneratorSpec,
    generate_edges,
    generate_features,
    generate_labels,
)

__all__ = [
    "TemporalDataset",
    "WorkloadProfile",
    "batch_duplication_ratio",
    "profile_dataset",
    "available_datasets",
    "get_dataset",
    "NegativeSampler",
    "InductiveSplit",
    "inductive_split",
    "DATASETS",
    "GeneratorSpec",
    "derive_rng",
    "generate_edges",
    "generate_features",
    "generate_labels",
]
