"""TemporalDataset: a named CTDG with features, splits, and statistics."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Tuple

import numpy as np

from ..core import TGraph
from ..tensor import Tensor
from .synthetic import (
    DATASETS,
    GeneratorSpec,
    generate_edges,
    generate_features,
    generate_labels,
)

__all__ = ["TemporalDataset", "get_dataset", "available_datasets"]


@dataclass
class TemporalDataset:
    """A continuous-time temporal graph dataset.

    Attributes:
        name: registry name (e.g. ``'wiki'``).
        src/dst/ts: chronological edge arrays.
        nfeat/efeat: feature matrices (numpy; wrapped into tensors when a
            graph is built so placement stays caller-controlled).
        num_nodes: total node count.
        spec: the generator recipe, including paper-scale counts.
    """

    name: str
    src: np.ndarray
    dst: np.ndarray
    ts: np.ndarray
    nfeat: np.ndarray
    efeat: np.ndarray
    num_nodes: int
    spec: Optional[GeneratorSpec] = None
    #: dynamic per-interaction source-node labels (state-change events),
    #: used by the node-classification task; rare positives.
    edge_labels: Optional[np.ndarray] = None

    @property
    def num_edges(self) -> int:
        return len(self.src)

    def build_graph(self, feature_device=None) -> TGraph:
        """Materialize a :class:`TGraph` with features on *feature_device*.

        Args:
            feature_device: ``'cpu'`` (default) keeps node/edge features
                host-resident (the CPU-to-GPU case); ``'cuda'`` places them
                on the simulated device (the all-on-GPU case).
        """
        g = TGraph(self.src, self.dst, self.ts, num_nodes=self.num_nodes)
        g.set_nfeat(Tensor(self.nfeat, device=feature_device))
        g.set_efeat(Tensor(self.efeat, device=feature_device))
        return g

    def splits(self, train: float = 0.70, val: float = 0.15) -> Tuple[int, int, int]:
        """Chronological (train, val, test) edge-index boundaries.

        Returns ``(train_end, val_end, test_end)`` such that training edges
        are ``[0, train_end)``, validation ``[train_end, val_end)``, and
        testing ``[val_end, test_end)`` — the standard 70/15/15 protocol of
        the JODIE/TGL evaluations.
        """
        m = self.num_edges
        train_end = int(m * train)
        val_end = int(m * (train + val))
        return train_end, val_end, m

    def stats(self) -> Dict[str, object]:
        """Summary row matching Table 3's columns (plus scale factors)."""
        row = {
            "dataset": self.name,
            "|V|": self.num_nodes,
            "|E|": self.num_edges,
            "d_v": self.nfeat.shape[1],
            "d_e": self.efeat.shape[1],
            "max(t)": float(self.ts[-1]) if len(self.ts) else 0.0,
        }
        if self.spec is not None:
            row["paper |V|"] = self.spec.paper_nodes
            row["paper |E|"] = self.spec.paper_edges
            row["node scale"] = (
                round(self.spec.paper_nodes / self.num_nodes, 1) if self.num_nodes else 0
            )
            row["edge scale"] = (
                round(self.spec.paper_edges / self.num_edges, 1) if self.num_edges else 0
            )
        return row

    def bipartite_partition(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """(user ids, item ids) for bipartite datasets, else None."""
        if self.spec is None or not self.spec.bipartite:
            return None
        num_users = max(1, int(round(self.num_nodes * self.spec.user_fraction)))
        return (
            np.arange(num_users, dtype=np.int64),
            np.arange(num_users, self.num_nodes, dtype=np.int64),
        )


def available_datasets() -> Tuple[str, ...]:
    """Names accepted by :func:`get_dataset`."""
    return tuple(DATASETS)


@lru_cache(maxsize=None)
def _load(name: str) -> TemporalDataset:
    spec = DATASETS[name]
    src, dst, ts = generate_edges(spec)
    nfeat, efeat = generate_features(spec)
    labels = generate_labels(spec, src, ts)
    return TemporalDataset(
        name=name, src=src, dst=dst, ts=ts,
        nfeat=nfeat, efeat=efeat, num_nodes=spec.num_nodes, spec=spec,
        edge_labels=labels,
    )


def get_dataset(name: str) -> TemporalDataset:
    """Load (generating on first use) the named synthetic dataset."""
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASETS)}")
    return _load(name)
