"""Negative-edge sampling for link-prediction training and evaluation."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["NegativeSampler"]


class NegativeSampler:
    """Sample negative destination nodes for link prediction.

    For bipartite graphs, negatives are drawn from the item partition
    (matching the JODIE/TGL protocol); otherwise from all nodes.

    Args:
        candidates: node ids negatives are drawn from.
        seed: RNG seed; the stream is deterministic, so re-creating a
            sampler with the same seed replays identical negatives (used to
            score different frameworks on identical batches).
    """

    def __init__(self, candidates: np.ndarray, seed: int = 42):
        candidates = np.asarray(candidates, dtype=np.int64)
        if len(candidates) == 0:
            raise ValueError("need at least one negative candidate")
        self.candidates = candidates
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    @classmethod
    def for_dataset(cls, dataset, seed: int = 42) -> "NegativeSampler":
        """Build a sampler with the right candidate set for *dataset*."""
        partition = dataset.bipartite_partition()
        if partition is not None:
            return cls(partition[1], seed=seed)
        return cls(np.arange(dataset.num_nodes, dtype=np.int64), seed=seed)

    def sample(self, n: int) -> np.ndarray:
        """Draw *n* negative node ids (with replacement)."""
        idx = self._rng.integers(0, len(self.candidates), size=n)
        return self.candidates[idx]

    def reset(self) -> None:
        """Restart the deterministic stream (e.g. before each epoch)."""
        self._rng = np.random.default_rng(self.seed)
