"""Temporal-graph analytics: the statistics the paper's speedups depend on.

§5's discussion attributes the optimization operators' effectiveness to
workload properties — how often the same (node, time) pairs repeat within
batches (dedup), how often embeddings recur across batches (cache), how
concentrated the time-delta distribution is (time precomputation), and
how skewed popularity is.  This module quantifies those properties for
any :class:`~repro.data.dataset.TemporalDataset`, so users can predict
which operators will pay off on their own data before training anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core import TGraph, TSampler, TBlock, TContext, iter_batches

__all__ = ["WorkloadProfile", "profile_dataset", "batch_duplication_ratio"]


@dataclass
class WorkloadProfile:
    """Optimization-relevant statistics of a CTDG workload."""

    name: str
    num_nodes: int
    num_edges: int
    #: edges per node (density; higher -> deeper histories to sample).
    edges_per_node: float
    #: fraction of (src, dst) pairs that repeat at least once.
    repeat_pair_fraction: float
    #: Gini coefficient of destination popularity (skew; 0 uniform, 1 extreme).
    popularity_gini: float
    #: mean fraction of duplicate (node, time) pairs in 2-hop frontiers —
    #: the work dedup() removes.
    dedup_potential: float
    #: fraction of distinct time deltas among sampled neighbor deltas —
    #: lower means precomputed_times() reuses more rows.
    delta_distinct_fraction: float
    #: median / 99th-percentile inter-event gap (burstiness indicator).
    median_gap: float
    p99_gap: float

    def as_row(self) -> Dict[str, object]:
        return {
            "dataset": self.name,
            "|V|": self.num_nodes,
            "|E|": self.num_edges,
            "E/V": round(self.edges_per_node, 1),
            "repeat pairs": f"{100 * self.repeat_pair_fraction:.1f}%",
            "popularity gini": round(self.popularity_gini, 3),
            "dedup potential": f"{100 * self.dedup_potential:.1f}%",
            "distinct deltas": f"{100 * self.delta_distinct_fraction:.1f}%",
        }


def _gini(counts: np.ndarray) -> float:
    """Gini coefficient of a non-negative count vector."""
    counts = np.sort(counts.astype(np.float64))
    n = len(counts)
    total = counts.sum()
    if n == 0 or total == 0:
        return 0.0
    cumulative = np.cumsum(counts)
    # Standard formula: 1 - 2 * sum((cum - x/2)) / (n * total)
    return float(1.0 - 2.0 * np.sum(cumulative - counts / 2.0) / (n * total))


def batch_duplication_ratio(
    g: TGraph,
    batch_size: int,
    num_nbrs: int = 10,
    max_batches: int = 10,
    start: Optional[int] = None,
) -> float:
    """Mean fraction of duplicate (node, time) pairs in 2-hop frontiers.

    This is exactly the row reduction ``op.dedup`` achieves before
    sampling the second hop — the paper's key workload lever.
    """
    ctx = TContext(g)
    sampler = TSampler(num_nbrs, "recent")
    if start is None:
        start = g.num_edges // 2  # mid-stream: histories are warm
    ratios = []
    for i, batch in enumerate(iter_batches(g, batch_size, start=start)):
        if i >= max_batches:
            break
        head = batch.block(ctx)
        sampler.sample(head)
        tail = head.next_block()
        pairs = np.empty(tail.num_dst, dtype=[("n", np.int64), ("t", np.float64)])
        pairs["n"] = tail.dstnodes
        pairs["t"] = tail.dsttimes
        unique = len(np.unique(pairs))
        if tail.num_dst:
            ratios.append(1.0 - unique / tail.num_dst)
    return float(np.mean(ratios)) if ratios else 0.0


def _delta_distinct_fraction(
    g: TGraph, batch_size: int, num_nbrs: int, max_batches: int
) -> float:
    ctx = TContext(g)
    sampler = TSampler(num_nbrs, "recent")
    start = g.num_edges // 2
    deltas = []
    for i, batch in enumerate(iter_batches(g, batch_size, start=start)):
        if i >= max_batches:
            break
        head = batch.block(ctx)
        sampler.sample(head)
        if head.num_src:
            deltas.append(head.time_deltas().astype(np.float32))
    if not deltas:
        return 1.0
    flat = np.concatenate(deltas)
    return float(len(np.unique(flat)) / len(flat))


def profile_dataset(dataset, batch_size: int = 300, num_nbrs: int = 10,
                    max_batches: int = 8) -> WorkloadProfile:
    """Compute a :class:`WorkloadProfile` for *dataset*."""
    g = dataset.build_graph()
    src, dst, ts = dataset.src, dataset.dst, dataset.ts

    pairs = src.astype(np.int64) * dataset.num_nodes + dst
    _, counts = np.unique(pairs, return_counts=True)
    repeat_fraction = float((counts > 1).sum() / len(counts)) if len(counts) else 0.0

    popularity = np.bincount(dst, minlength=dataset.num_nodes)

    gaps = np.diff(ts)
    gaps = gaps[gaps > 0]

    return WorkloadProfile(
        name=dataset.name,
        num_nodes=dataset.num_nodes,
        num_edges=dataset.num_edges,
        edges_per_node=dataset.num_edges / max(dataset.num_nodes, 1),
        repeat_pair_fraction=repeat_fraction,
        popularity_gini=_gini(popularity),
        dedup_potential=batch_duplication_ratio(
            g, batch_size, num_nbrs=num_nbrs, max_batches=max_batches
        ),
        delta_distinct_fraction=_delta_distinct_fraction(
            g, batch_size, num_nbrs, max_batches
        ),
        median_gap=float(np.median(gaps)) if len(gaps) else 0.0,
        p99_gap=float(np.quantile(gaps, 0.99)) if len(gaps) else 0.0,
    )
