"""Heartbeat failure detection, lease-fenced promotion, and rebalancing.

The :class:`Supervisor` is the cluster's control plane, driven entirely
by the shared simulated clock so every run is replayable:

* **Heartbeats** — each live replica-group member beats every
  ``heartbeat_interval`` seconds; a beat can be lost at the
  ``heartbeat.drop`` fault site.  The detector scores every member with
  a phi-accrual-style suspicion level, ``phi = missed_intervals =
  (now - last_beat) / interval``: crossing ``suspect_phi`` marks the
  member *suspect*, crossing ``dead_phi`` marks it *dead* and triggers
  failover.  A suspect member that beats again returns to *ok*.
  Members deliberately **quiesced** for a planned hand-off accrue no
  phi at all — their beats are suppressed together with their detection,
  and their beat clock resets on resume — so a rebalance can never be
  mistaken for a failure.
* **Failover & promotion** — a dead member is fenced (crashed) and its
  WAL-replay respawn scheduled.  When the dead member was its group's
  *primary* and a serving follower exists, the supervisor drives the
  promotion state machine ``OK → SUSPECT → DEAD → PROMOTING → OK``:
  the group's lease epoch is bumped (fencing any zombie ex-primary),
  the most-caught-up follower takes over
  (:meth:`~repro.cluster.replication.ReplicaGroup.promote`), and the
  modeled promotion time is charged to the clock.  The ``repl.promote``
  fault site can delay an attempt by one tick (bounded retries keep the
  window finite).  The respawned ex-primary rejoins as a follower and
  catches up from its queue — re-replication restoring the factor.
* **Rebalance** — per-shard load is accumulated per observation window;
  when one shard sustains more than ``rebalance_factor``x the mean load
  for ``rebalance_patience`` consecutive windows, the hottest nodes of
  the hot shard move to the least-loaded shard.  With replication the
  hand-off moves the rows on *every* member of both groups (so group
  members stay bit-identical), behind a quiesce window whose modeled
  time is charged to the clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..resilience.hooks import poke as _poke
from .replica import ReplicaDown

__all__ = ["ShardState", "SupervisorStats", "Supervisor"]


class ShardState:
    """Detector states for one replica-group member."""

    OK = "ok"
    SUSPECT = "suspect"
    DEAD = "dead"
    RECOVERING = "recovering"
    PROMOTING = "promoting"
    QUIESCED = "quiesced"


@dataclass
class SupervisorStats:
    """Running control-plane counters."""

    beats: int = 0
    beats_dropped: int = 0
    suspects: int = 0
    failovers: int = 0
    recoveries: int = 0
    promotions: int = 0
    promote_delays: int = 0
    rebalances: int = 0
    nodes_moved: int = 0
    #: seconds from dead-declaration to rejoin, per completed failover.
    recovery_seconds: List[float] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        out = {
            "beats": self.beats,
            "beats_dropped": self.beats_dropped,
            "suspects": self.suspects,
            "failovers": self.failovers,
            "recoveries": self.recoveries,
            "promotions": self.promotions,
            "promote_delays": self.promote_delays,
            "rebalances": self.rebalances,
            "nodes_moved": self.nodes_moved,
        }
        if self.recovery_seconds:
            out["mean_time_to_recover"] = float(np.mean(self.recovery_seconds))
        return out


class Supervisor:
    """Failure detector + failover/promotion/rebalance driver.

    Args:
        clock: the shared simulated clock.
        groups: the cluster's :class:`~repro.cluster.replication.ReplicaGroup`s.
        router: the shared :class:`~repro.cluster.partition.ShardRouter`.
        heartbeat_interval: seconds between beats per member.
        suspect_phi / dead_phi: missed-interval thresholds for the
            suspect and dead transitions.
        recovery_base / recovery_per_batch: modeled takeover time —
            snapshot load plus per-WAL-record replay.
        promote_seconds: modeled lease hand-off time charged to the
            clock per completed promotion.
        rebalance_window: seconds of load observed per rebalance check.
        rebalance_factor: hot-spot trigger, ``max_load > factor * mean``.
        rebalance_patience: consecutive hot windows before moving nodes.
        rebalance_max_fraction: at most this fraction of the hot shard's
            nodes moves per rebalance.
        rebalance_handoff_seconds: modeled quiesce window charged to the
            clock per rebalance hand-off.
        on_recovered: callback ``(shard_id, member_idx)`` after a
            respawn completes and the member has rejoined its group.
    """

    #: promotion attempts delayed by ``repl.promote`` before one is
    #: forced through without consulting the site (bounds the window).
    MAX_PROMOTE_DELAYS = 2

    def __init__(
        self,
        clock,
        groups,
        router,
        heartbeat_interval: float = 5.0e-3,
        suspect_phi: float = 2.0,
        dead_phi: float = 4.0,
        recovery_base: float = 1.0e-2,
        recovery_per_batch: float = 1.0e-4,
        promote_seconds: float = 2.0e-3,
        rebalance_window: float = 0.25,
        rebalance_factor: float = 2.0,
        rebalance_patience: int = 2,
        rebalance_max_fraction: float = 0.25,
        rebalance_handoff_seconds: float = 2.0e-3,
        on_recovered=None,
    ):
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if not 0 < suspect_phi <= dead_phi:
            raise ValueError("need 0 < suspect_phi <= dead_phi")
        self.clock = clock
        self.groups = groups
        self.router = router
        self.interval = float(heartbeat_interval)
        self.suspect_phi = float(suspect_phi)
        self.dead_phi = float(dead_phi)
        self.recovery_base = float(recovery_base)
        self.recovery_per_batch = float(recovery_per_batch)
        self.promote_seconds = float(promote_seconds)
        self.rebalance_window = float(rebalance_window)
        self.rebalance_factor = float(rebalance_factor)
        self.rebalance_patience = int(rebalance_patience)
        self.rebalance_max_fraction = float(rebalance_max_fraction)
        self.rebalance_handoff_seconds = float(rebalance_handoff_seconds)
        self.on_recovered = on_recovered
        self.stats = SupervisorStats()

        n = len(groups)
        self._num_shards = n
        now = clock.now()
        self.last_beat: Dict[Tuple[int, int], float] = {
            (g, m): now
            for g in range(n)
            for m in range(len(groups[g].members))
        }
        self.state: List[List[str]] = [
            [ShardState.OK] * len(groups[g].members) for g in range(n)
        ]
        self._dead_since: Dict[Tuple[int, int], float] = {}
        #: members deliberately out of service for a planned hand-off;
        #: they accrue **no** phi (satellite fix: a quiesced member must
        #: never be suspected for beats it was told not to send).
        self._quiesced: Set[Tuple[int, int]] = set()
        #: groups whose promotion attempt was delayed (repl.promote).
        self._need_promotion: Set[int] = set()
        self._promote_delay_count: Dict[int, int] = {}
        self._next_beat = now + self.interval
        self._beat_seq = 0
        # load accounting for hot-spot detection
        self._window_load = np.zeros(n, dtype=np.float64)
        self._node_touches = np.zeros(router.num_nodes, dtype=np.float64)
        self._window_end = now + self.rebalance_window
        self._hot_streak = 0

    # ---- load observation ----------------------------------------------------------

    def note_load(self, shard: int, n_events: int,
                  nodes: Optional[np.ndarray] = None) -> None:
        """Record that *shard* handled *n_events* endpoint rows."""
        self._window_load[shard] += n_events
        if nodes is not None and len(nodes):
            np.add.at(self._node_touches, nodes, 1.0)

    # ---- the tick ------------------------------------------------------------------

    def tick(self) -> None:
        """Run heartbeats, detection, promotions, recoveries, rebalance."""
        now = self.clock.now()
        self._heartbeats(now)
        self._detect(now)
        self._retry_promotions()
        self._complete_recoveries(now)
        self._maybe_rebalance(now)

    def _heartbeats(self, now: float) -> None:
        while now >= self._next_beat:
            t = self._next_beat
            self._next_beat += self.interval
            self._beat_seq += 1
            for g, group in enumerate(self.groups):
                for m, member in enumerate(group.members):
                    if not member.alive or (g, m) in self._quiesced:
                        continue  # dead hosts and quiesced members beat nothing
                    self.stats.beats += 1
                    dropped = _poke(
                        "heartbeat.drop", shard=g,
                        extra=g + self._num_shards * m + 101 * self._beat_seq,
                    )
                    if dropped:
                        self.stats.beats_dropped += 1
                    else:
                        self.last_beat[(g, m)] = t

    def _detect(self, now: float) -> None:
        for g, group in enumerate(self.groups):
            for m, member in enumerate(group.members):
                if member.recovering or (g, m) in self._quiesced:
                    continue
                phi = (now - self.last_beat[(g, m)]) / self.interval
                if phi >= self.dead_phi:
                    if self.state[g][m] != ShardState.DEAD:
                        self.state[g][m] = ShardState.DEAD
                        self._dead_since[(g, m)] = now
                        self._member_failover(g, m, now)
                elif phi >= self.suspect_phi:
                    if self.state[g][m] == ShardState.OK:
                        self.state[g][m] = ShardState.SUSPECT
                        self.stats.suspects += 1
                elif self.state[g][m] == ShardState.SUSPECT:
                    self.state[g][m] = ShardState.OK  # beat again: false alarm

    # ---- failover / promotion ------------------------------------------------------

    def force_failover(self, shard: int, member: Optional[int] = None) -> None:
        """Immediately declare dead members of *shard* (drain settlement).

        With ``member=None`` every crashed-but-undeclared member of the
        group is declared; otherwise just that member.  Used when the
        coordinator must guarantee progress — e.g. a crash observed
        directly at teardown that the heartbeat detector has not had
        enough missed beats to score yet.
        """
        group = self.groups[shard]
        now = self.clock.now()
        targets = (
            range(len(group.members)) if member is None else [int(member)]
        )
        for m in targets:
            rep = group.members[m]
            if rep.recovering or (rep.alive and member is None):
                continue
            self.state[shard][m] = ShardState.DEAD
            self._dead_since.setdefault((shard, m), now)
            self._member_failover(shard, m, now)

    def _member_failover(self, shard: int, m: int, now: float) -> None:
        """Fence a dead member, schedule its respawn, promote if needed."""
        group = self.groups[shard]
        rep = group.members[m]
        was_primary = m == group.primary_idx
        # A live member declared dead (accumulated heartbeat loss) is
        # fenced first — split-brain guard: the detector's verdict wins.
        rep.crash()
        seconds = rep.estimate_recovery_seconds(
            self.recovery_base, self.recovery_per_batch
        )
        rep.begin_recovery(ready_at=now + seconds)
        self.state[shard][m] = ShardState.RECOVERING
        self.stats.failovers += 1
        if was_primary and group.any_serving():
            # The dead primary leaves a serving follower: hand the lease
            # over instead of waiting out the WAL respawn (the respawned
            # ex-primary rejoins as a follower).
            self._attempt_promotion(shard)

    def _attempt_promotion(self, shard: int) -> bool:
        """One promotion attempt; may be delayed by the ``repl.promote`` site."""
        group = self.groups[shard]
        if group.serving_primary() is not None:
            self._need_promotion.discard(shard)
            return True
        delays = self._promote_delay_count.get(shard, 0)
        if delays < self.MAX_PROMOTE_DELAYS:
            delayed = _poke(
                "repl.promote", shard=shard,
                extra=shard + 1009 * delays,
            )
            if delayed:
                # The attempt stalls one tick; the group stays in
                # PROMOTING and reads fail over to followers meanwhile.
                self._promote_delay_count[shard] = delays + 1
                self._need_promotion.add(shard)
                self._mark_promoting(shard)
                self.stats.promote_delays += 1
                return False
        try:
            new_idx = group.promote()
        except ReplicaDown:
            # No serving candidate: the whole group is down — the
            # factor-1 path (WAL respawn of the primary) takes over.
            self._need_promotion.discard(shard)
            self._promote_delay_count.pop(shard, None)
            return False
        self.clock.advance(self.promote_seconds)
        self.state[shard][new_idx] = ShardState.OK
        self.last_beat[(shard, new_idx)] = self.clock.now()
        self._need_promotion.discard(shard)
        self._promote_delay_count.pop(shard, None)
        self.stats.promotions += 1
        return True

    def _mark_promoting(self, shard: int) -> None:
        group = self.groups[shard]
        for m in range(len(group.members)):
            if self.state[shard][m] == ShardState.OK and group.serving(m):
                self.state[shard][m] = ShardState.PROMOTING

    def _retry_promotions(self) -> None:
        for shard in sorted(self._need_promotion):
            if self._attempt_promotion(shard):
                group = self.groups[shard]
                for m in range(len(group.members)):
                    if self.state[shard][m] == ShardState.PROMOTING:
                        self.state[shard][m] = ShardState.OK

    def ensure_primary(self, shard: int) -> bool:
        """Guarantee *shard* has a serving, leased primary if possible.

        Called by the coordinator's write fan-out (a commit needs a
        primary to sequence under the current lease) and by
        ``staleness_bound='strict'`` reads (read-your-commits blocks the
        gather until promotion completes).  Returns True when a serving
        primary exists on exit.
        """
        group = self.groups[shard]
        if group.serving_primary() is not None:
            return True
        if not group.any_serving():
            return False
        self._attempt_promotion(shard)
        return group.serving_primary() is not None

    def _complete_recoveries(self, now: float) -> None:
        for g, group in enumerate(self.groups):
            for m, member in enumerate(group.members):
                if member.recovering and now >= member.ready_at:
                    member.respawn()
                    self.state[g][m] = ShardState.OK
                    self.last_beat[(g, m)] = now
                    self.stats.recoveries += 1
                    started = self._dead_since.pop((g, m), now)
                    self.stats.recovery_seconds.append(now - started)
                    # Rejoin under the current lease and catch up from
                    # the in-order queue (re-replication: the group is
                    # back at full factor and bit-identical).
                    group.rejoin(m)
                    if group.serving_primary() is None:
                        # First member back of a fully-dead group: it
                        # must take (or retake) the lease.
                        self.ensure_primary(g)
                    if self.on_recovered is not None:
                        self.on_recovered(g, m)

    # ---- planned quiesce (rebalance hand-off) ---------------------------------------

    def quiesce(self, shard: int, member: int) -> None:
        """Take a member out of service deliberately (no phi accrual)."""
        self._quiesced.add((shard, member))
        if self.state[shard][member] in (ShardState.OK, ShardState.SUSPECT):
            self.state[shard][member] = ShardState.QUIESCED

    def resume(self, shard: int, member: int) -> None:
        """Return a quiesced member to service; its beat clock restarts
        *now* so the quiesce window can never read as missed intervals."""
        self._quiesced.discard((shard, member))
        self.last_beat[(shard, member)] = self.clock.now()
        if self.state[shard][member] == ShardState.QUIESCED:
            self.state[shard][member] = ShardState.OK

    # ---- hot-spot rebalance --------------------------------------------------------

    def _maybe_rebalance(self, now: float) -> None:
        if now < self._window_end:
            return
        self._window_end = now + self.rebalance_window
        load = self._window_load
        self._window_load = np.zeros_like(load)
        total = float(load.sum())
        if total <= 0 or len(load) < 2:
            self._hot_streak = 0
            return
        mean = total / len(load)
        hot = int(np.argmax(load))
        if load[hot] > self.rebalance_factor * mean and len(
            self.router.owned_nodes(hot)
        ) > 1:
            self._hot_streak += 1
        else:
            self._hot_streak = 0
            return
        if self._hot_streak < self.rebalance_patience:
            return
        self._hot_streak = 0
        cold = int(np.argmin(load))
        if cold == hot:
            return
        hot_group, cold_group = self.groups[hot], self.groups[cold]
        if not all(
            hot_group.serving(m) for m in range(len(hot_group.members))
        ) or not all(
            cold_group.serving(m) for m in range(len(cold_group.members))
        ):
            return  # never rebalance through a failover in progress
        owned = self.router.owned_nodes(hot)
        touches = self._node_touches[owned]
        order = owned[np.argsort(-touches, kind="stable")]
        # Move the hottest nodes carrying about half the excess load,
        # bounded so one rebalance never empties a shard.
        excess = (load[hot] - mean) / 2.0
        budget = max(1, int(len(owned) * self.rebalance_max_fraction))
        moved: List[int] = []
        carried = 0.0
        for node in order:
            if len(moved) >= budget or carried >= excess:
                break
            moved.append(int(node))
            carried += float(self._node_touches[node])
        if not moved or len(moved) >= len(owned):
            return
        nodes = np.asarray(moved, dtype=np.int64)
        # Planned hand-off: quiesce both groups (no phi accrual), drain
        # every member's queue so group members are bit-identical and no
        # parked record straddles the ownership move, hand the rows over
        # member-by-member, charge the modeled window, resume.
        for g, group in ((hot, hot_group), (cold, cold_group)):
            for m in range(len(group.members)):
                self.quiesce(g, m)
                group.drain_member(m)
        for m in range(len(hot_group.members)):
            cold_group.members[m].adopt(hot_group.members[m].release(nodes))
        self.clock.advance(self.rebalance_handoff_seconds)
        self.router.move(nodes, cold)
        for g, group in ((hot, hot_group), (cold, cold_group)):
            for m in range(len(group.members)):
                self.resume(g, m)
        self._node_touches[nodes] = 0.0
        self.stats.rebalances += 1
        self.stats.nodes_moved += len(nodes)

    # ---- reporting -----------------------------------------------------------------

    def shard_states(self) -> List[str]:
        """Primary-member state per group (legacy single-replica view)."""
        return [
            self.state[g][group.primary_idx]
            for g, group in enumerate(self.groups)
        ]

    def member_states(self) -> List[List[str]]:
        return [list(states) for states in self.state]

    def __repr__(self) -> str:
        return (
            f"Supervisor(shards={len(self.groups)}, "
            f"states={self.shard_states()}, "
            f"failovers={self.stats.failovers})"
        )
