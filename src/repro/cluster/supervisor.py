"""Heartbeat failure detection, failover, and hot-spot rebalancing.

The :class:`Supervisor` is the cluster's control plane, driven entirely
by the shared simulated clock so every run is replayable:

* **Heartbeats** — each live replica beats every ``heartbeat_interval``
  seconds; a beat can be lost at the ``heartbeat.drop`` fault site.  The
  detector scores each shard with a phi-accrual-style suspicion level,
  ``phi = missed_intervals = (now - last_beat) / interval``: crossing
  ``suspect_phi`` marks the shard *suspect* (still routed to, still
  hedged against), crossing ``dead_phi`` marks it *dead* and triggers
  failover.  A suspect shard that beats again returns to *ok* — lost
  heartbeats alone never kill a live shard until they accumulate past
  the dead threshold.
* **Failover** — a dead shard's takeover replays its private WAL
  (snapshot + prefix-consistent suffix, see
  :meth:`~repro.cluster.replica.ShardReplica.respawn`); the modeled
  takeover time is charged to the clock, and until it elapses the
  coordinator queues the shard's state applies for redelivery.
* **Rebalance** — per-shard load is accumulated per observation window;
  when one shard sustains more than ``rebalance_factor``x the mean load
  for ``rebalance_patience`` consecutive windows, the hottest nodes of
  the hot shard (by per-node touch counts) move to the least-loaded
  shard: row hand-off, snapshot anchoring on both sides, and a router
  assignment bump (the only place assignments change).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..resilience.hooks import poke as _poke

__all__ = ["ShardState", "SupervisorStats", "Supervisor"]


class ShardState:
    """Detector states for one shard."""

    OK = "ok"
    SUSPECT = "suspect"
    DEAD = "dead"
    RECOVERING = "recovering"


@dataclass
class SupervisorStats:
    """Running control-plane counters."""

    beats: int = 0
    beats_dropped: int = 0
    suspects: int = 0
    failovers: int = 0
    recoveries: int = 0
    rebalances: int = 0
    nodes_moved: int = 0
    #: seconds from dead-declaration to rejoin, per completed failover.
    recovery_seconds: List[float] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        out = {
            "beats": self.beats,
            "beats_dropped": self.beats_dropped,
            "suspects": self.suspects,
            "failovers": self.failovers,
            "recoveries": self.recoveries,
            "rebalances": self.rebalances,
            "nodes_moved": self.nodes_moved,
        }
        if self.recovery_seconds:
            out["mean_time_to_recover"] = float(np.mean(self.recovery_seconds))
        return out


class Supervisor:
    """Failure detector + failover/rebalance driver for one cluster.

    Args:
        clock: the shared simulated clock.
        replicas: the cluster's :class:`~repro.cluster.replica.ShardReplica`s.
        router: the shared :class:`~repro.cluster.partition.ShardRouter`.
        heartbeat_interval: seconds between beats per shard.
        suspect_phi / dead_phi: missed-interval thresholds for the
            suspect and dead transitions.
        recovery_base / recovery_per_batch: modeled takeover time —
            snapshot load plus per-WAL-record replay.
        rebalance_window: seconds of load observed per rebalance check.
        rebalance_factor: hot-spot trigger, ``max_load > factor * mean``.
        rebalance_patience: consecutive hot windows before moving nodes.
        rebalance_max_fraction: at most this fraction of the hot shard's
            nodes moves per rebalance.
        on_recovered: callback ``(shard_id)`` after a respawn completes
            (the coordinator drains that shard's pending applies).
    """

    def __init__(
        self,
        clock,
        replicas,
        router,
        heartbeat_interval: float = 5.0e-3,
        suspect_phi: float = 2.0,
        dead_phi: float = 4.0,
        recovery_base: float = 1.0e-2,
        recovery_per_batch: float = 1.0e-4,
        rebalance_window: float = 0.25,
        rebalance_factor: float = 2.0,
        rebalance_patience: int = 2,
        rebalance_max_fraction: float = 0.25,
        on_recovered=None,
    ):
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if not 0 < suspect_phi <= dead_phi:
            raise ValueError("need 0 < suspect_phi <= dead_phi")
        self.clock = clock
        self.replicas = replicas
        self.router = router
        self.interval = float(heartbeat_interval)
        self.suspect_phi = float(suspect_phi)
        self.dead_phi = float(dead_phi)
        self.recovery_base = float(recovery_base)
        self.recovery_per_batch = float(recovery_per_batch)
        self.rebalance_window = float(rebalance_window)
        self.rebalance_factor = float(rebalance_factor)
        self.rebalance_patience = int(rebalance_patience)
        self.rebalance_max_fraction = float(rebalance_max_fraction)
        self.on_recovered = on_recovered
        self.stats = SupervisorStats()

        n = len(replicas)
        now = clock.now()
        self.last_beat = np.full(n, now, dtype=np.float64)
        self.state = [ShardState.OK] * n
        self._dead_since: Dict[int, float] = {}
        self._next_beat = now + self.interval
        self._beat_seq = 0
        # load accounting for hot-spot detection
        self._window_load = np.zeros(n, dtype=np.float64)
        self._node_touches = np.zeros(router.num_nodes, dtype=np.float64)
        self._window_end = now + self.rebalance_window
        self._hot_streak = 0

    # ---- load observation ----------------------------------------------------------

    def note_load(self, shard: int, n_events: int,
                  nodes: Optional[np.ndarray] = None) -> None:
        """Record that *shard* handled *n_events* endpoint rows."""
        self._window_load[shard] += n_events
        if nodes is not None and len(nodes):
            np.add.at(self._node_touches, nodes, 1.0)

    # ---- the tick ------------------------------------------------------------------

    def tick(self) -> None:
        """Run heartbeats, detection, failover completion, rebalance."""
        now = self.clock.now()
        self._heartbeats(now)
        self._detect(now)
        self._complete_recoveries(now)
        self._maybe_rebalance(now)

    def _heartbeats(self, now: float) -> None:
        while now >= self._next_beat:
            t = self._next_beat
            self._next_beat += self.interval
            self._beat_seq += 1
            for i, rep in enumerate(self.replicas):
                if not rep.alive:
                    continue  # a dead host beats nothing
                self.stats.beats += 1
                dropped = _poke(
                    "heartbeat.drop", shard=i,
                    extra=i + 101 * self._beat_seq,
                )
                if dropped:
                    self.stats.beats_dropped += 1
                else:
                    self.last_beat[i] = t

    def _detect(self, now: float) -> None:
        for i, rep in enumerate(self.replicas):
            if rep.recovering:
                continue
            phi = (now - self.last_beat[i]) / self.interval
            if phi >= self.dead_phi:
                if self.state[i] != ShardState.DEAD:
                    self.state[i] = ShardState.DEAD
                    self._dead_since[i] = now
                    self._failover(i, now)
            elif phi >= self.suspect_phi:
                if self.state[i] == ShardState.OK:
                    self.state[i] = ShardState.SUSPECT
                    self.stats.suspects += 1
            elif self.state[i] == ShardState.SUSPECT:
                self.state[i] = ShardState.OK  # it beat again: false alarm

    def force_failover(self, shard: int) -> None:
        """Immediately declare *shard* dead (drain-time settlement).

        Used when the coordinator must guarantee progress — e.g. a crash
        observed directly at teardown that the heartbeat detector has not
        had enough missed beats to score yet.
        """
        if self.replicas[shard].recovering:
            return
        now = self.clock.now()
        self.state[shard] = ShardState.DEAD
        self._dead_since.setdefault(shard, now)
        self._failover(shard, now)

    def _failover(self, shard: int, now: float) -> None:
        """Declare *shard* dead and start its WAL-replay takeover."""
        rep = self.replicas[shard]
        # A live shard declared dead (accumulated heartbeat loss) is
        # fenced first — split-brain guard: the detector's verdict wins.
        rep.crash()
        seconds = rep.estimate_recovery_seconds(
            self.recovery_base, self.recovery_per_batch
        )
        rep.begin_recovery(ready_at=now + seconds)
        self.state[shard] = ShardState.RECOVERING
        self.stats.failovers += 1

    def _complete_recoveries(self, now: float) -> None:
        for i, rep in enumerate(self.replicas):
            if rep.recovering and now >= rep.ready_at:
                rep.respawn()
                self.state[i] = ShardState.OK
                self.last_beat[i] = now
                self.stats.recoveries += 1
                started = self._dead_since.pop(i, now)
                self.stats.recovery_seconds.append(now - started)
                if self.on_recovered is not None:
                    self.on_recovered(i)

    # ---- hot-spot rebalance --------------------------------------------------------

    def _maybe_rebalance(self, now: float) -> None:
        if now < self._window_end:
            return
        self._window_end = now + self.rebalance_window
        load = self._window_load
        self._window_load = np.zeros_like(load)
        total = float(load.sum())
        if total <= 0 or len(load) < 2:
            self._hot_streak = 0
            return
        mean = total / len(load)
        hot = int(np.argmax(load))
        if load[hot] > self.rebalance_factor * mean and len(
            self.router.owned_nodes(hot)
        ) > 1:
            self._hot_streak += 1
        else:
            self._hot_streak = 0
            return
        if self._hot_streak < self.rebalance_patience:
            return
        self._hot_streak = 0
        cold = int(np.argmin(load))
        if cold == hot:
            return
        hot_rep, cold_rep = self.replicas[hot], self.replicas[cold]
        if not (hot_rep.alive and cold_rep.alive) or (
            hot_rep.recovering or cold_rep.recovering
        ):
            return  # never rebalance through a failover in progress
        owned = self.router.owned_nodes(hot)
        touches = self._node_touches[owned]
        order = owned[np.argsort(-touches, kind="stable")]
        # Move the hottest nodes carrying about half the excess load,
        # bounded so one rebalance never empties a shard.
        excess = (load[hot] - mean) / 2.0
        budget = max(1, int(len(owned) * self.rebalance_max_fraction))
        moved: List[int] = []
        carried = 0.0
        for node in order:
            if len(moved) >= budget or carried >= excess:
                break
            moved.append(int(node))
            carried += float(self._node_touches[node])
        if not moved or len(moved) >= len(owned):
            return
        nodes = np.asarray(moved, dtype=np.int64)
        cold_rep.adopt(hot_rep.release(nodes))
        self.router.move(nodes, cold)
        self._node_touches[nodes] = 0.0
        self.stats.rebalances += 1
        self.stats.nodes_moved += len(nodes)

    # ---- reporting -----------------------------------------------------------------

    def shard_states(self) -> List[str]:
        return list(self.state)

    def __repr__(self) -> str:
        return (
            f"Supervisor(shards={len(self.replicas)}, states={self.state}, "
            f"failovers={self.stats.failovers})"
        )
