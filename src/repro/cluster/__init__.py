"""Fault-tolerant sharded serving on a deterministic simulated clock.

The cluster layer partitions the serving state (``Memory`` / ``Mailbox``)
across N shards — each a lease-fenced **replica group** of
``replication_factor`` members on distinct hosts, every member with its
own write-ahead log — and keeps the whole thing serving through member
crashes, stalls, and lossy RPC:

========================  ========================================================
component                 role
========================  ========================================================
:class:`ShardRouter`      node -> shard assignment (hash / temporal-locality)
:class:`ShardReplica`     one group member's state slice + private WAL + liveness
:class:`ReplicaGroup`     primary + followers, quorum log shipping, promotion
:class:`SimRpc`           lossy RPC with timeout, retry, backoff, hedging
:class:`Supervisor`       heartbeat detection, lease-fenced promotion, rebalance
:class:`ServeCluster`     coordinator mirroring the ``ServeRuntime`` surface
========================  ========================================================

All failure behavior routes through the shared ``FaultInjector`` sites
(``rpc.send``, ``rpc.recv``, ``shard.crash``, ``shard.stall``,
``heartbeat.drop``, ``repl.ship``, ``repl.ack``, ``repl.promote``,
``mem.flip``, ``scrub.skip``), so
chaos schedules are deterministic and the committed state after any
schedule — killing up to ``replication_factor - 1`` members per group —
is bit-identical to a clean single-runtime replay, with reads failing
over to followers instead of zero-filling (see ``tests/test_cluster.py``).
"""

from .coordinator import ClusterConfig, ServeCluster, ShardedCostModel
from .partition import ShardRouter, hash_shard, place_group_hosts
from .replica import ReplicaDown, ShardReplica, StaleLeaseError
from .replication import ReplicaGroup
from .rpc import RpcStats, RpcTimeout, SimRpc
from .supervisor import ShardState, Supervisor, SupervisorStats

__all__ = [
    "ClusterConfig",
    "ServeCluster",
    "ShardedCostModel",
    "ShardRouter",
    "hash_shard",
    "place_group_hosts",
    "ReplicaDown",
    "ShardReplica",
    "StaleLeaseError",
    "ReplicaGroup",
    "RpcStats",
    "RpcTimeout",
    "SimRpc",
    "ShardState",
    "Supervisor",
    "SupervisorStats",
]
