"""Fault-tolerant sharded serving on a deterministic simulated clock.

The cluster layer partitions the serving state (``Memory`` / ``Mailbox``)
across N shard replicas, each with its own write-ahead log, and keeps the
whole thing serving through shard crashes, stalls, and lossy RPC:

========================  ========================================================
component                 role
========================  ========================================================
:class:`ShardRouter`      node -> shard assignment (hash / temporal-locality)
:class:`ShardReplica`     one shard's state slice + private WAL + liveness
:class:`SimRpc`           lossy RPC with timeout, retry, backoff, hedging
:class:`Supervisor`       heartbeat failure detection, failover, rebalance
:class:`ServeCluster`     coordinator mirroring the ``ServeRuntime`` surface
========================  ========================================================

All failure behavior routes through the shared ``FaultInjector`` sites
(``rpc.send``, ``rpc.recv``, ``shard.crash``, ``shard.stall``,
``heartbeat.drop``), so chaos schedules are deterministic and the
committed state after any schedule is bit-identical to a clean
single-runtime replay (see ``tests/test_cluster.py``).
"""

from .coordinator import ClusterConfig, ServeCluster, ShardedCostModel
from .partition import ShardRouter, hash_shard
from .replica import ReplicaDown, ShardReplica
from .rpc import RpcStats, RpcTimeout, SimRpc
from .supervisor import ShardState, Supervisor, SupervisorStats

__all__ = [
    "ClusterConfig",
    "ServeCluster",
    "ShardedCostModel",
    "ShardRouter",
    "hash_shard",
    "ReplicaDown",
    "ShardReplica",
    "RpcStats",
    "RpcTimeout",
    "SimRpc",
    "ShardState",
    "Supervisor",
    "SupervisorStats",
]
