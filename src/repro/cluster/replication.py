"""Replica groups: lease-fenced primary/follower replication per shard.

A :class:`ReplicaGroup` turns one shard into ``replication_factor``
:class:`~repro.cluster.replica.ShardReplica`s on distinct hosts — one
**primary** plus followers — so the shard's rows stay readable through
the detection→promotion window that previously zero-filled every gather
touching a dead shard.

**Synchronous log shipping.**  Every cluster-committed sub-batch is
shipped to all group members in the same commit fan-out: the primary leg
rides the ordinary :meth:`~repro.cluster.rpc.SimRpc.call` (so a
factor-1 group is byte-for-byte the PR-8 single-replica path), follower
legs ride :meth:`~repro.cluster.rpc.SimRpc.ship` through the
``repl.ship`` / ``repl.ack`` fault sites.  Each member appends the
record to its *own* WAL and applies it through the same staging path
(WAL-then-apply), so follower state is bit-identical to the primary's by
construction — there is no separate "follower apply" code to diverge.
The commit is **quorum-acked** when at least ``ack_quorum`` members
(primary included) acknowledged their durable append; an under-quorum
commit is never aborted — the cluster already sequenced it — but is
counted and completed by redelivery, which single-runtime equivalence
requires.

**In-order per-member delivery.**  A member that misses a ship (down,
dropped leg, RPC budget exhausted) parks the record in its private
queue; every later ship to that member drains the queue *first*, so a
member can never observe sequence ``s+1`` before ``s``.  This matters
because replicas absorb redelivery by sequence idempotence
(``seq <= last_seq`` is a no-op) — out-of-order delivery would silently
drop the skipped record forever.

**Lease-fenced promotion.**  When the primary dies, :meth:`promote`
bumps the group's lease epoch, installs the most-caught-up serving
follower (highest applied ``last_seq``; deterministic lowest-member-id
tie-break), drains its queue, and replays — as a WAL backstop — any
committed suffix from the fenced ex-primary's durable directory
(:func:`repro.durable.tail.read_batch_suffix`).  Every surviving member
observes the new epoch; a zombie ex-primary still writing under the old
epoch is rejected at the replica with
:class:`~repro.cluster.replica.StaleLeaseError` *before* its WAL
append, so a partitioned brain can never diverge a follower.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..durable.tail import read_batch_suffix
from ..serve.events import EventBatch
from .replica import ReplicaDown, ShardReplica
from .rpc import RpcTimeout

__all__ = ["ReplicaGroup"]


class ReplicaGroup:
    """One shard's primary + followers with quorum log shipping.

    Args:
        shard_id: the shard this group serves.
        members: the group's replicas, ``members[0]`` the initial
            primary; each must live on a distinct host (see
            :func:`~repro.cluster.partition.place_group_hosts`).
        ack_quorum: members (primary included) whose durable append must
            be acknowledged for a quorum commit; defaults to a majority
            (``factor // 2 + 1``).  Bounded to ``[1, factor]``.
    """

    def __init__(
        self,
        shard_id: int,
        members: List[ShardReplica],
        ack_quorum: Optional[int] = None,
    ):
        if not members:
            raise ValueError("a replica group needs at least one member")
        hosts = [m.host for m in members]
        if len(set(hosts)) != len(hosts):
            raise ValueError(
                f"replica group {shard_id} places two members on one host "
                f"({hosts}): a single host loss would take the whole group"
            )
        self.shard_id = int(shard_id)
        self.members = list(members)
        self.primary_idx = 0
        #: lease epoch; bumped (and fenced) by every promotion.
        self.epoch = 0
        factor = len(self.members)
        quorum = factor // 2 + 1 if ack_quorum is None else int(ack_quorum)
        if not 1 <= quorum <= factor:
            raise ValueError(
                f"ack_quorum {quorum} out of range [1, {factor}]"
            )
        self.ack_quorum = quorum
        #: newest cluster commit sequence shipped through this group.
        self.committed_seq = -1
        #: per-member in-order queues of ``(seq, sub_batch)`` to redeliver.
        self._pending: List[List[Tuple[int, EventBatch]]] = [
            [] for _ in self.members
        ]
        # counters
        self.ships = 0
        self.quorum_commits = 0
        self.under_quorum = 0
        self.acks_lost = 0
        self.deferred = 0
        self.redelivered = 0
        self.promotions = 0
        self.catchup_replayed = 0

    # ---- membership ----------------------------------------------------------------

    @property
    def factor(self) -> int:
        return len(self.members)

    @property
    def primary(self) -> ShardReplica:
        return self.members[self.primary_idx]

    def serving(self, idx: int) -> bool:
        """Is member *idx* able to take reads/writes right now?"""
        m = self.members[idx]
        return m.alive and not m.recovering

    def serving_primary(self) -> Optional[ShardReplica]:
        return self.primary if self.serving(self.primary_idx) else None

    def any_serving(self) -> bool:
        return any(self.serving(i) for i in range(len(self.members)))

    def read_member(self) -> Optional[int]:
        """Member to gather from: the primary, else the best follower.

        Read fail-over is what replication buys on the read path: while
        *any* member serves, a gather never zero-fills.  Followers are
        ranked by applied ``last_seq`` (freshest wins; deterministic
        lowest-member-id tie-break), so bounded-lag reads lag by at most
        the records parked in that follower's queue.
        """
        if self.serving(self.primary_idx):
            return self.primary_idx
        candidates = [i for i in range(len(self.members)) if self.serving(i)]
        if not candidates:
            return None
        return max(candidates, key=lambda i: (self.members[i].last_seq, -i))

    def member_settled(self, idx: int) -> bool:
        """Is member *idx* serving, fully caught up, and queue-empty?

        The scrubber only cross-compares maintained digests between
        settled members: a member with parked redeliveries legitimately
        lags its peers, and comparing it would report false divergence.
        """
        return (
            self.serving(idx)
            and not self._pending[idx]
            and self.members[idx].last_seq == self.committed_seq
        )

    # ---- quorum log shipping -------------------------------------------------------

    def _defer(self, idx: int, seq: int, batch: EventBatch) -> None:
        self._pending[idx].append((seq, batch))
        self.deferred += 1

    def drain_member(self, idx: int) -> int:
        """Reliable in-order redelivery of member *idx*'s parked records.

        Mirrors the PR-8 coordinator redelivery channel: queues are
        appended in sequence order and drained oldest-first; an already
        applied sequence (delivered-but-ack-lost ship) is a replica-side
        no-op.  A member that is not serving keeps its queue untouched.
        """
        if not self.serving(idx):
            return 0
        member = self.members[idx]
        queue, self._pending[idx] = self._pending[idx], []
        for seq, sub in queue:
            member.apply(sub, seq, epoch=self.epoch)
            self.redelivered += 1
        return len(queue)

    def ship(self, batch: EventBatch, seq: int, rpc, now: float,
             extra: int) -> int:
        """Synchronously replicate one committed sub-batch to all members.

        Returns the number of acknowledged durable appends.  The primary
        leg reproduces the single-replica commit path exactly (same RPC
        verb, same ``extra``, parking on timeout); follower legs go
        through :meth:`SimRpc.ship`.  Any member that cannot take the
        record now gets it parked in-order for redelivery — a commit is
        never lost, only late — and ``committed_seq`` advances
        regardless because the cluster-level sequencing already happened.
        """
        self.ships += 1
        acked = 0
        for idx, member in enumerate(self.members):
            if not self.serving(idx):
                self._defer(idx, seq, batch)
                continue
            if self._pending[idx]:
                # In-order channel: the backlog must land before this
                # record or sequence idempotence would drop it forever.
                self.drain_member(idx)
            deliver = (
                lambda m=member, b=batch, s=seq, e=self.epoch:
                m.apply(b, s, epoch=e)
            )
            if idx == self.primary_idx:
                try:
                    rpc.call(
                        self.shard_id, alive=member.alive,
                        stall=member.current_stall(now),
                        extra=extra, on_deliver=deliver,
                    )
                    acked += 1
                except (RpcTimeout, ReplicaDown):
                    # Maybe delivered (reply lost) — redelivery is
                    # idempotent by sequence number, so parking is safe.
                    self._defer(idx, seq, batch)
            else:
                delivered, ack = rpc.ship(
                    self.shard_id, idx, alive=member.alive,
                    extra=extra + 7919 * idx, on_deliver=deliver,
                )
                if not delivered:
                    self._defer(idx, seq, batch)
                elif ack:
                    acked += 1
                else:
                    # The follower appended durably; only the ack died.
                    self.acks_lost += 1
        if acked >= self.ack_quorum:
            self.quorum_commits += 1
        else:
            self.under_quorum += 1
        self.committed_seq = max(self.committed_seq, int(seq))
        return acked

    def pending_applies(self) -> int:
        return sum(len(q) for q in self._pending)

    # ---- promotion -----------------------------------------------------------------

    def promote(self) -> int:
        """Fence the old primary's lease and install the best follower.

        Raises :class:`ReplicaDown` when no serving candidate exists
        (whole group down — the caller falls back to WAL-respawn of the
        primary, exactly the factor-1 path).  Returns the new primary's
        member index.
        """
        old_idx = self.primary_idx
        candidates = [
            i for i in range(len(self.members))
            if i != old_idx and self.serving(i)
        ]
        if not candidates:
            raise ReplicaDown(
                f"shard {self.shard_id}: no serving follower to promote"
            )
        best = max(candidates, key=lambda i: (self.members[i].last_seq, -i))
        old_member = self.members[old_idx]
        # Bump-then-fence: every surviving member observes the new lease
        # before the new primary takes writes, so a zombie ex-primary
        # shipping under the old epoch is rejected at the replicas
        # (StaleLeaseError) — split-brain cannot reach a WAL.
        self.epoch += 1
        self.primary_idx = best
        for i, m in enumerate(self.members):
            if i != old_idx and m.alive and not m.recovering:
                m.lease_epoch = max(m.lease_epoch, self.epoch)
        # Catch-up pass 1: the in-order queue holds everything this
        # member was ever shipped but never applied.
        self.drain_member(best)
        # Catch-up pass 2 (WAL backstop): replay any committed suffix
        # straight from the fenced primary's durable directory.  After
        # the queue drain this replays nothing in the modeled fault
        # space — every committed record either reached the member or
        # sat in its queue — but it is what makes promotion safe against
        # coordinator bugs rather than merely consistent with them.
        new_primary = self.members[best]
        for record in read_batch_suffix(
            old_member.durable_dir, after_seq=new_primary.last_seq
        ):
            sub = EventBatch.from_arrays(record.arrays)
            new_primary.apply(
                sub, int(record.meta["seq"]), epoch=self.epoch
            )
            self.catchup_replayed += 1
        self.promotions += 1
        return best

    def rejoin(self, idx: int) -> None:
        """A respawned member rejoins: adopt the lease, drain its queue.

        The member respawned from its own WAL (its pre-crash acked
        state); the queue holds everything committed while it was gone,
        so after the drain it is bit-identical to the other members
        again — re-replication restoring the factor.
        """
        member = self.members[idx]
        member.lease_epoch = max(member.lease_epoch, self.epoch)
        self.drain_member(idx)

    # ---- reporting -----------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "factor": len(self.members),
            "primary": self.primary_idx,
            "epoch": self.epoch,
            "ack_quorum": self.ack_quorum,
            "committed_seq": self.committed_seq,
            "ships": self.ships,
            "quorum_commits": self.quorum_commits,
            "under_quorum": self.under_quorum,
            "acks_lost": self.acks_lost,
            "deferred": self.deferred,
            "redelivered": self.redelivered,
            "promotions": self.promotions,
            "catchup_replayed": self.catchup_replayed,
            "pending": self.pending_applies(),
        }

    def __repr__(self) -> str:
        states = "".join(
            ("P" if i == self.primary_idx else "F")
            + ("+" if self.serving(i) else "-")
            for i in range(len(self.members))
        )
        return (
            f"ReplicaGroup(shard={self.shard_id}, members={states}, "
            f"epoch={self.epoch}, quorum={self.ack_quorum})"
        )
