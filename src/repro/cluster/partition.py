"""Node-id partitioning across serving shards.

A :class:`ShardRouter` owns the node -> shard assignment the whole
cluster agrees on.  Two construction policies are supported:

* **hash** — a splitmix64 hash of the node id modulo the shard count.
  Stateless, uniform over node *counts*, and stable across runs for a
  fixed ``(seed, num_shards)`` pair.
* **temporal** — nodes are ordered by their mean event timestamp in a
  seeding stream (nodes active at similar times sit next to each other)
  and cut into contiguous runs balanced by per-node event *weight*.
  Requests gather temporally-close working sets, so co-active nodes on
  one shard means fewer shards touched per request.  The greedy cut
  guarantees every shard's weight is at most ``total/N + w_max``, i.e.
  within 2x of the makespan lower bound ``max(total/N, w_max)`` even on
  heavily skewed (zipf) event distributions.

After construction the assignment changes **only** through explicit
:meth:`move` calls (rebalance boundaries); every move bumps
:attr:`version` so replicas and durable snapshots can stamp which
assignment epoch they were written under.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["hash_shard", "place_group_hosts", "ShardRouter"]

_MASK64 = (1 << 64) - 1


def _splitmix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 over uint64 (same constants as faults.py)."""
    x = x.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x += np.uint64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def hash_shard(nodes: np.ndarray, num_shards: int, seed: int = 0) -> np.ndarray:
    """Stateless splitmix64 shard assignment for *nodes*.

    A pure function of ``(node, seed, num_shards)`` — two routers built
    with the same parameters agree on every node, on any machine.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    h = _splitmix64_array(nodes.astype(np.uint64) ^ np.uint64(seed & _MASK64))
    return (h % np.uint64(num_shards)).astype(np.int64)


def place_group_hosts(
    num_shards: int,
    replication_factor: int,
    num_hosts: Optional[int] = None,
) -> "list":
    """Host placement for every shard's replica group.

    Returns ``hosts[shard][member]`` — the simulated host each group
    member lives on — under the anti-affinity constraint that no two
    members of one group share a host (a single host loss must never
    take out a whole group, or replication buys nothing).  Placement is
    the deterministic diagonal ``(shard + member) % num_hosts``, which
    also spreads each host's load across primary and follower roles.

    ``num_hosts`` defaults to ``max(num_shards, replication_factor)``;
    fewer hosts than the factor is rejected because anti-affinity is
    then unsatisfiable.
    """
    num_shards = int(num_shards)
    replication_factor = int(replication_factor)
    if num_shards < 1 or replication_factor < 1:
        raise ValueError("num_shards and replication_factor must be >= 1")
    hosts = int(num_hosts) if num_hosts is not None else max(
        num_shards, replication_factor
    )
    if hosts < replication_factor:
        raise ValueError(
            f"cannot place {replication_factor} replicas of one group on "
            f"{hosts} hosts without two sharing a host"
        )
    placement = [
        [(shard + member) % hosts for member in range(replication_factor)]
        for shard in range(num_shards)
    ]
    for shard, group in enumerate(placement):
        if len(set(group)) != len(group):  # pragma: no cover - guarded above
            raise AssertionError(f"group {shard} placement collides: {group}")
    return placement


class ShardRouter:
    """The cluster-wide node -> shard assignment table.

    Args:
        assign: int64 ``(num_nodes,)`` shard id per node.
        num_shards: shard count (every assignment must be in range).
        policy: label of the policy that built the table (diagnostic).
    """

    def __init__(self, assign: np.ndarray, num_shards: int, policy: str = "hash"):
        assign = np.asarray(assign, dtype=np.int64)
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if len(assign) and (assign.min() < 0 or assign.max() >= num_shards):
            raise ValueError(
                f"assignment references shards outside [0, {num_shards})"
            )
        self.assign = assign
        self.num_shards = int(num_shards)
        self.policy = policy
        #: bumped on every :meth:`move`; snapshot/WAL records stamp it.
        self.version = 0
        #: ``(version, moved_nodes, src, dst)`` history of rebalances.
        self.moves: list = []

    # ---- constructors -------------------------------------------------------------

    @classmethod
    def hash(cls, num_nodes: int, num_shards: int, seed: int = 0) -> "ShardRouter":
        """Uniform stateless hash partitioning."""
        return cls(
            hash_shard(np.arange(num_nodes), num_shards, seed=seed),
            num_shards, policy="hash",
        )

    @classmethod
    def temporal(cls, src: np.ndarray, dst: np.ndarray, ts: np.ndarray,
                 num_nodes: int, num_shards: int) -> "ShardRouter":
        """Temporal-locality partitioning from a seeding event stream.

        Nodes are keyed by the mean timestamp of the events touching them
        (inactive nodes inherit the stream midpoint), sorted by that key
        (node id tie-break keeps the order total), then cut into
        ``num_shards`` contiguous runs by greedy event-weight balancing.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        ts = np.asarray(ts, dtype=np.float64)
        weight = np.zeros(num_nodes, dtype=np.float64)
        tsum = np.zeros(num_nodes, dtype=np.float64)
        for ends in (src, dst):
            ok = (ends >= 0) & (ends < num_nodes)
            np.add.at(weight, ends[ok], 1.0)
            np.add.at(tsum, ends[ok], ts[ok])
        mid = float(ts.mean()) if len(ts) else 0.0
        key = np.where(weight > 0, tsum / np.maximum(weight, 1.0), mid)
        order = np.lexsort((np.arange(num_nodes), key))
        assign = np.empty(num_nodes, dtype=np.int64)
        # Greedy contiguous cuts: each shard takes nodes until it reaches
        # the remaining-average weight, so no shard exceeds
        # total/num_shards + max_single_weight (the 2x-of-ideal bound).
        w = np.maximum(weight[order], 1e-12)  # inactive nodes count a little
        remaining = float(w.sum())
        i = 0
        for shard in range(num_shards):
            left = num_shards - shard
            if shard == num_shards - 1:
                j = num_nodes
            else:
                target = remaining / left
                acc = 0.0
                j = i
                # leave at least one node per remaining shard
                hard_stop = num_nodes - (left - 1)
                while j < hard_stop and (acc < target or j == i):
                    acc += w[j]
                    j += 1
            assign[order[i:j]] = shard
            remaining -= float(w[i:j].sum())
            i = j
        return cls(assign, num_shards, policy="temporal")

    @classmethod
    def build(cls, policy: str, num_nodes: int, num_shards: int, seed: int = 0,
              stream=None) -> "ShardRouter":
        """Policy-name dispatch used by the CLI and the cluster config."""
        if policy == "hash":
            return cls.hash(num_nodes, num_shards, seed=seed)
        if policy == "temporal":
            if stream is None:
                raise ValueError(
                    "temporal partitioning needs a seeding stream "
                    "(src/dst/ts event arrays)"
                )
            return cls.temporal(stream.src, stream.dst, stream.ts,
                                num_nodes, num_shards)
        raise ValueError(f"unknown partition policy {policy!r} "
                         "(expected 'hash' or 'temporal')")

    # ---- queries ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.assign)

    def shard_of(self, nodes: np.ndarray) -> np.ndarray:
        """Shard id per node (vectorized table lookup)."""
        return self.assign[np.asarray(nodes, dtype=np.int64)]

    def owned_nodes(self, shard: int) -> np.ndarray:
        """Sorted global node ids assigned to *shard*."""
        return np.flatnonzero(self.assign == shard).astype(np.int64)

    def counts(self) -> np.ndarray:
        """Nodes per shard."""
        return np.bincount(self.assign, minlength=self.num_shards)

    def shards_touched(self, batch) -> np.ndarray:
        """Sorted shard ids owning at least one valid endpoint of *batch*."""
        nodes = np.concatenate([batch.src, batch.dst])
        nodes = nodes[(nodes >= 0) & (nodes < self.num_nodes)]
        if not len(nodes):
            return np.empty(0, dtype=np.int64)
        return np.unique(self.assign[nodes])

    def split_batch(self, batch) -> Dict[int, "object"]:
        """Per-shard sub-batches of the events touching each shard.

        An event whose endpoints live on two shards appears in both
        sub-batches; each replica applies only the endpoint rows it owns,
        so nothing is double-applied.
        """
        out = {}
        for shard in self.shards_touched(batch):
            src_ok = (batch.src >= 0) & (batch.src < self.num_nodes)
            dst_ok = (batch.dst >= 0) & (batch.dst < self.num_nodes)
            mask = np.zeros(len(batch), dtype=bool)
            mask[src_ok] |= self.assign[batch.src[src_ok]] == shard
            mask[dst_ok] |= self.assign[batch.dst[dst_ok]] == shard
            out[int(shard)] = batch.take(mask)
        return out

    # ---- rebalance ----------------------------------------------------------------

    def move(self, nodes: np.ndarray, dst_shard: int) -> int:
        """Reassign *nodes* to *dst_shard*; returns the new version.

        The only mutation path: outside of ``move`` the assignment is
        immutable, which is what makes routing deterministic between
        rebalance boundaries.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if not 0 <= dst_shard < self.num_shards:
            raise ValueError(f"destination shard {dst_shard} out of range")
        if len(nodes) == 0:
            return self.version
        src_shards = np.unique(self.assign[nodes])
        self.assign[nodes] = dst_shard
        self.version += 1
        self.moves.append((self.version, nodes.copy(),
                           [int(s) for s in src_shards], int(dst_shard)))
        return self.version

    def __repr__(self) -> str:
        return (f"ShardRouter(policy={self.policy!r}, shards={self.num_shards}, "
                f"nodes={self.num_nodes}, version={self.version})")
