"""One serving shard: an owned slice of Memory/Mailbox behind its own WAL.

A :class:`ShardReplica` owns the rows of the global node space its
:class:`~repro.cluster.partition.ShardRouter` assignment names.  State is
held *locally indexed* (a dense slice plus a global->local map), and
every mutation follows the same WAL-then-apply protocol the single
serving runtime uses (PR 5): the ownership-filtered event batch is
logged to the replica's private :class:`~repro.durable.store.DurableStateStore`
before any row changes, so a crashed replica recovers — snapshot plus
prefix-consistent log suffix — to state bit-identical to what it acked.

Three invariants make shard-level recovery compose into cluster-level
equivalence:

* **Sequence idempotence** — every applied batch carries the cluster
  commit sequence number; a redelivered batch (lost RPC reply, pending
  queue drain after failover) with ``seq <= last_seq`` is a no-op.
* **Ownership filtering commutes with dedup** — the replica applies only
  the endpoint rows it owns; because ``Memory.update`` / ``Mailbox.store``
  resolve duplicates per node (last event wins, canonical ring order),
  the union of per-shard applies equals one global apply.
* **Snapshots anchor ownership** — a snapshot (written at construction,
  periodically, and at every rebalance hand-off) embeds the owned-node
  array, so the WAL suffix above the newest snapshot is always replayed
  under the ownership it was logged under.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.mailbox import Mailbox
from ..core.memory import Memory
from ..durable.codec import KIND_BATCH
from ..durable.store import DurableStateStore
from ..integrity.digest import ChunkedDigest, merkle_root
from ..serve.commit import stage_updates
from ..serve.events import EventBatch

__all__ = ["ReplicaDown", "StaleLeaseError", "ShardReplica"]


def _filtered_apply(
    batch: EventBatch,
    local_map: np.ndarray,
    num_nodes: int,
    dim: int,
    memory: Memory,
    mailbox: Optional[Mailbox],
) -> np.ndarray:
    """Stage *batch* and apply the rows *local_map* owns; returns them.

    The one ownership-filtered apply used by live traffic, respawn
    replay, and read-only shadow replay — all three must write the exact
    same rows or recovery equivalence breaks.
    """
    nodes, values, times = stage_updates(batch, dim)
    ok = (nodes >= 0) & (nodes < num_nodes)
    own = np.zeros(len(nodes), dtype=bool)
    own[ok] = local_map[nodes[ok]] >= 0
    if not own.any():
        return np.empty(0, dtype=np.int64)
    local = local_map[nodes[own]]
    memory.update(local, values[own], times[own])
    if mailbox is not None:
        mailbox.store(local, values[own], times[own])
    return local


class _StateDigests:
    """Maintained chunk digests over one replica's local state tables.

    Readers close over the replica so they always hash the *live* backing
    arrays; the container is rebuilt whenever ownership (and therefore
    table height) changes.
    """

    def __init__(self, replica: "ShardReplica", chunk_rows: int):
        rows = len(replica.owned)
        self.memory = ChunkedDigest(
            lambda lo, hi: (
                replica.memory.data.data[lo:hi],
                replica.memory.time[lo:hi],
            ),
            rows,
            chunk_rows,
        )
        self.mailbox: Optional[ChunkedDigest] = None
        if replica.mailbox is not None:
            def _mail_reader(lo, hi):
                mb = replica.mailbox
                out = (mb.mail.data[lo:hi], mb.time[lo:hi])
                if mb._next_slot is not None:
                    out = out + (mb._next_slot[lo:hi],)
                return out

            self.mailbox = ChunkedDigest(_mail_reader, rows, chunk_rows)

    def record_rows(self, rows: np.ndarray) -> None:
        self.memory.record_rows(rows)
        if self.mailbox is not None:
            self.mailbox.record_rows(rows)

    def components(self):
        yield "memory", self.memory
        if self.mailbox is not None:
            yield "mailbox", self.mailbox


class ReplicaDown(RuntimeError):
    """The replica is crashed or still recovering; it serves nothing."""


class StaleLeaseError(RuntimeError):
    """A write arrived stamped with a fenced (superseded) lease epoch.

    Raised by :meth:`ShardReplica.apply` when the carried epoch is older
    than the replica's current lease epoch: the sender is a zombie
    ex-primary that was deposed by a promotion it has not observed.  The
    write is rejected *before* the WAL append, so a split-brain primary
    can never make a follower diverge.
    """


class ShardReplica:
    """One shard's state, durability, and liveness.

    Args:
        shard_id: this replica's shard number.
        owned: global node ids this shard owns (the router's assignment).
        num_nodes: global node-space size (for the global->local map).
        dim: memory/mailbox row width.
        durable_dir: private directory for this shard's WAL + snapshots.
        mailbox_slots: ring slots per node (0 disables the mailbox).
        fsync: WAL durability policy (``'always'``/``'batch'``/``'never'``).
        snapshot_every: applied batches between periodic snapshots.
        member_id: position of this replica inside its replica group
            (0 = initial primary; followers are 1..factor-1).
        host: simulated host this member is placed on (placement asserts
            no two members of one group share a host).
    """

    def __init__(
        self,
        shard_id: int,
        owned: np.ndarray,
        num_nodes: int,
        dim: int,
        durable_dir: str,
        mailbox_slots: int = 1,
        fsync: str = "batch",
        snapshot_every: int = 64,
        member_id: int = 0,
        host: int = 0,
        chunk_rows: int = 32,
    ):
        self.shard_id = int(shard_id)
        self.member_id = int(member_id)
        self.host = int(host)
        self.chunk_rows = int(chunk_rows)
        self.num_nodes = int(num_nodes)
        self.dim = int(dim)
        self.mailbox_slots = int(mailbox_slots)
        self.durable_dir = durable_dir
        self.fsync = fsync
        self.snapshot_every = int(snapshot_every)
        os.makedirs(durable_dir, exist_ok=True)

        self.owned = np.sort(np.asarray(owned, dtype=np.int64))
        self._local = np.full(self.num_nodes, -1, dtype=np.int64)
        self._local[self.owned] = np.arange(len(self.owned))
        self.memory = Memory(len(self.owned), dim)
        self.mailbox = (
            Mailbox(len(self.owned), dim, slots=self.mailbox_slots)
            if self.mailbox_slots > 0
            else None
        )
        self.store: Optional[DurableStateStore] = DurableStateStore(
            durable_dir, fsync=fsync
        )

        #: newest cluster commit sequence number durably applied.
        self.last_seq = -1
        #: newest replica-group lease epoch this member has observed;
        #: writes stamped with an older epoch are fenced (rejected).
        self.lease_epoch = 0
        self.alive = True
        self.recovering = False
        self.ready_at = 0.0
        #: simulated time until which calls run ``stall_factor`` slower.
        self.stall_until = -np.inf
        self.stall_factor = 1.0

        self.applied_batches = 0
        self.applied_events = 0
        self.duplicate_batches = 0
        self.stale_rejects = 0
        self.crashes = 0
        self.recoveries = 0
        self.stalls = 0
        self._since_snapshot = 0
        # Anchor: ownership is durable before the first WAL record.
        self.write_snapshot()
        #: maintained (expected) chunk digests — refreshed on every
        #: legitimate write, so silent out-of-band mutation is detectable.
        self.digests: Optional[_StateDigests] = _StateDigests(self, self.chunk_rows)

    # ---- liveness ------------------------------------------------------------------

    def current_stall(self, now: float) -> float:
        """Service-time multiplier in effect at *now*."""
        return self.stall_factor if now < self.stall_until else 1.0

    def stall(self, now: float, factor: float, window: float) -> None:
        """Enter a stall window: every call until ``now + window`` is slow."""
        self.stall_until = now + float(window)
        self.stall_factor = max(1.0, float(factor))
        self.stalls += 1

    def crash(self) -> None:
        """Kill the process: in-RAM state is gone, the durable dir survives.

        The store is closed (its buffered WAL tail flushes — disk-level
        loss is modeled separately by the ``disk.*`` fault sites), so
        everything this replica *acked* is durable and recovery is exact.
        """
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        self.memory = None
        self.mailbox = None
        self.digests = None
        if self.store is not None:
            self.store.close()
            self.store = None

    def begin_recovery(self, ready_at: float) -> None:
        """Failover initiated: a respawn completes at *ready_at*."""
        self.recovering = True
        self.ready_at = float(ready_at)

    def estimate_recovery_seconds(self, base: float, per_batch: float) -> float:
        """Modeled takeover time: snapshot load plus WAL-suffix replay."""
        return base + per_batch * max(0, self._since_snapshot)

    def respawn(self) -> Dict[str, object]:
        """Rebuild state from the durable directory and rejoin.

        Loads the newest intact snapshot (ownership included), replays
        the committed non-aborted WAL suffix through the same staging +
        filtered-apply path live traffic uses, and restores the applied
        sequence cursor — bit-identical to the state at the last acked
        apply (prefix-consistent: a torn tail was never acked).
        """
        self.store = DurableStateStore(self.durable_dir, fsync=self.fsync)
        state = self.store.recover()
        if state.snapshot_arrays is None:
            raise RuntimeError(
                f"shard {self.shard_id}: no snapshot to recover ownership from"
            )
        arrays = state.snapshot_arrays
        self.owned = np.asarray(arrays["owned"], dtype=np.int64)
        self._local = np.full(self.num_nodes, -1, dtype=np.int64)
        self._local[self.owned] = np.arange(len(self.owned))
        self.memory = Memory(len(self.owned), self.dim)
        self.memory.data.data[...] = arrays["memory/data"]
        self.memory.time[...] = arrays["memory/time"]
        if self.mailbox_slots > 0:
            self.mailbox = Mailbox(len(self.owned), self.dim,
                                   slots=self.mailbox_slots)
            self.mailbox.mail.data[...] = arrays["mailbox/mail"]
            self.mailbox.time[...] = arrays["mailbox/time"]
            if self.mailbox._next_slot is not None:
                self.mailbox._next_slot[...] = arrays["mailbox/cursor"]
        self.last_seq = int(state.snapshot_meta.get("seq", -1))
        self.lease_epoch = int(state.snapshot_meta.get("epoch", 0))
        self.digests = _StateDigests(self, self.chunk_rows)
        replayed = 0
        for record in state.records:
            if record.kind != KIND_BATCH:
                continue
            batch = EventBatch.from_arrays(record.arrays)
            if len(batch):
                self._apply_rows(batch)
            self.last_seq = max(self.last_seq, int(record.meta.get("seq", -1)))
            self.lease_epoch = max(
                self.lease_epoch, int(record.meta.get("epoch", 0))
            )
            replayed += 1
        self._since_snapshot = replayed
        self.alive = True
        self.recovering = False
        self.recoveries += 1
        return {"replayed": replayed, "seq": self.last_seq,
                "aborted_skipped": state.aborted}

    # ---- state application ---------------------------------------------------------

    def _apply_rows(self, batch: EventBatch) -> int:
        """Stage *batch* and apply the endpoint rows this shard owns.

        The chunks covering the written rows are re-hashed right after
        the write (O(dirty rows)): the maintained digests always describe
        exactly what the apply path produced, which is what makes a later
        recompute mismatch proof of out-of-band mutation.
        """
        local = _filtered_apply(
            batch, self._local, self.num_nodes, self.dim, self.memory, self.mailbox
        )
        if len(local) and self.digests is not None:
            self.digests.record_rows(local)
        return int(len(local))

    def apply(self, batch: EventBatch, seq: int, epoch: Optional[int] = None) -> bool:
        """Durably apply one cluster-committed sub-batch (idempotent).

        WAL-then-apply: the sub-batch is logged before any row changes,
        so an ack implies durability.  Returns False for a redelivered
        sequence number (already applied — nothing happens).

        *epoch*, when given, is the sender's replica-group lease epoch:
        a write fenced by a promotion this member has already observed
        (``epoch < lease_epoch``) raises :class:`StaleLeaseError` before
        touching the log; a newer epoch is adopted (lease renewal rides
        on the ship).  ``None`` (single-replica legacy path) skips the
        check.
        """
        if not self.alive or self.memory is None:
            raise ReplicaDown(f"shard {self.shard_id} is down")
        if epoch is not None:
            if epoch < self.lease_epoch:
                self.stale_rejects += 1
                raise StaleLeaseError(
                    f"shard {self.shard_id} member {self.member_id}: write "
                    f"stamped epoch {epoch} rejected (lease epoch is "
                    f"{self.lease_epoch} — sender was fenced)"
                )
            self.lease_epoch = int(epoch)
        if seq <= self.last_seq:
            self.duplicate_batches += 1
            return False
        if not len(batch):
            self.last_seq = int(seq)
            return True
        self.store.log_batch(
            batch.to_arrays(),
            {"seq": int(seq), "watermark": float(batch.ts.max()),
             "epoch": int(self.lease_epoch)},
        )
        applied = self._apply_rows(batch)
        self.last_seq = int(seq)
        self.applied_batches += 1
        self.applied_events += applied
        self._since_snapshot += 1
        if self.snapshot_every and self._since_snapshot >= self.snapshot_every:
            self.write_snapshot()
        return True

    def gather(self, nodes: np.ndarray) -> np.ndarray:
        """Memory rows for owned global *nodes* (scoring-path read)."""
        if not self.alive or self.memory is None:
            raise ReplicaDown(f"shard {self.shard_id} is down")
        local = self._local[np.asarray(nodes, dtype=np.int64)]
        if (local < 0).any():
            raise KeyError(
                f"shard {self.shard_id} asked for {int((local < 0).sum())} "
                "nodes it does not own"
            )
        return self.memory.data.data[local]

    # ---- integrity -----------------------------------------------------------------

    def read_rows(self, component: str, rows: np.ndarray) -> Tuple[np.ndarray, ...]:
        """Copies of local *rows* of one state table (repair-donor read)."""
        rows = np.asarray(rows, dtype=np.int64)
        if component == "memory":
            return (self.memory.data.data[rows].copy(), self.memory.time[rows].copy())
        if component == "mailbox" and self.mailbox is not None:
            out = [self.mailbox.mail.data[rows].copy(), self.mailbox.time[rows].copy()]
            if self.mailbox._next_slot is not None:
                out.append(self.mailbox._next_slot[rows].copy())
            return tuple(out)
        raise KeyError(f"unknown state component {component!r}")

    def overwrite_rows(
        self,
        component: str,
        rows: np.ndarray,
        arrays: Tuple[np.ndarray, ...],
        record: bool = False,
    ) -> None:
        """Integrity repair: overwrite local *rows* of one state table.

        With ``record=False`` (corruption repair) the maintained digests
        are left alone so the scrubber's post-repair recompute verifies
        the repair against the pre-corruption expectation; ``record=True``
        (logical-divergence repair) adopts the new rows as the expected
        state.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if component == "memory":
            self.memory.data.data[rows] = arrays[0]
            self.memory.time[rows] = arrays[1]
            if record and self.digests is not None:
                self.digests.memory.record_rows(rows)
            return
        if component == "mailbox" and self.mailbox is not None:
            self.mailbox.mail.data[rows] = arrays[0]
            self.mailbox.time[rows] = arrays[1]
            if self.mailbox._next_slot is not None:
                self.mailbox._next_slot[rows] = arrays[2]
            if record and self.digests is not None:
                self.digests.mailbox.record_rows(rows)
            return
        raise KeyError(f"unknown state component {component!r}")

    def shadow_state(self) -> Optional[Tuple[Memory, Optional[Mailbox], int]]:
        """Rebuild acked state from durable evidence, without side effects.

        Read-only respawn: loads the newest snapshot and replays the
        committed WAL suffix into *fresh* tables — the live tables, the
        WAL, and the maintained digests are untouched.  Returns ``None``
        when the evidence cannot arbitrate: no snapshot, ownership
        drifted from the live tables (mid-rebalance), or the replay falls
        short of the live applied sequence (damaged or torn suffix).
        """
        if self.store is None or not self.alive:
            return None
        state = self.store.recover()
        if state.snapshot_arrays is None:
            return None
        arrays = state.snapshot_arrays
        owned = np.asarray(arrays["owned"], dtype=np.int64)
        if not np.array_equal(owned, self.owned):
            return None
        memory = Memory(len(owned), self.dim)
        memory.data.data[...] = arrays["memory/data"]
        memory.time[...] = arrays["memory/time"]
        mailbox: Optional[Mailbox] = None
        if self.mailbox_slots > 0:
            mailbox = Mailbox(len(owned), self.dim, slots=self.mailbox_slots)
            mailbox.mail.data[...] = arrays["mailbox/mail"]
            mailbox.time[...] = arrays["mailbox/time"]
            if mailbox._next_slot is not None:
                mailbox._next_slot[...] = arrays["mailbox/cursor"]
        seq = int(state.snapshot_meta.get("seq", -1))
        for record in state.records:
            if record.kind != KIND_BATCH:
                continue
            batch = EventBatch.from_arrays(record.arrays)
            if len(batch):
                _filtered_apply(
                    batch, self._local, self.num_nodes, self.dim, memory, mailbox
                )
            seq = max(seq, int(record.meta.get("seq", -1)))
        if seq != self.last_seq:
            return None
        return memory, mailbox, seq

    def verify_wal(self) -> list:
        """Damaged WAL segment paths (empty = every segment parses intact)."""
        if self.store is None:
            return []
        return self.store.wal.verify()

    def reanchor_wal(self) -> int:
        """Repair a damaged WAL by re-anchoring on verified live state.

        Rotate-then-snapshot: the damaged segment is sealed, the snapshot
        covers every record it held, and compaction deletes it — callers
        must have digest-verified the live tables first, because the
        snapshot *is* them.  Returns the number of segments dropped.
        """
        if self.store is None or not self.alive:
            raise ReplicaDown(f"shard {self.shard_id} is down")
        before = self.store.compacted_segments
        self.store.wal.rotate()
        self.write_snapshot()
        return self.store.compacted_segments - before

    def integrity_summary(self) -> Dict[str, object]:
        """Per-replica merkle summary: component roots plus a replica root."""
        if not self.alive or self.digests is None:
            raise ReplicaDown(f"shard {self.shard_id} is down")
        components = {name: cd.root() for name, cd in self.digests.components()}
        if self.store is not None:
            components["wal"] = merkle_root(self.store.wal.segment_digests())
        blob = "|".join(f"{k}:{v}" for k, v in sorted(components.items()))
        return {
            "components": components,
            "root": hashlib.sha256(blob.encode()).hexdigest(),
        }

    # ---- snapshots / rebalance -----------------------------------------------------

    def state_arrays(self) -> Dict[str, np.ndarray]:
        arrays = {
            "owned": self.owned,
            "memory/data": self.memory.data.data,
            "memory/time": self.memory.time,
        }
        if self.mailbox is not None:
            arrays["mailbox/mail"] = self.mailbox.mail.data
            arrays["mailbox/time"] = self.mailbox.time
            if self.mailbox._next_slot is not None:
                arrays["mailbox/cursor"] = self.mailbox._next_slot
        return arrays

    def write_snapshot(self) -> None:
        """Durably anchor state + ownership; compacts the log below it."""
        self.store.snapshot(
            self.state_arrays(),
            {"seq": int(self.last_seq), "epoch": int(self.lease_epoch)},
        )
        self._since_snapshot = 0

    def _rebuild(self, new_owned: np.ndarray, keep_from=None) -> "tuple":
        """Re-slice local storage for *new_owned*; returns the old stores."""
        old_memory, old_mailbox, old_local = self.memory, self.mailbox, self._local
        self.owned = np.sort(np.asarray(new_owned, dtype=np.int64))
        self._local = np.full(self.num_nodes, -1, dtype=np.int64)
        self._local[self.owned] = np.arange(len(self.owned))
        self.memory = Memory(len(self.owned), self.dim)
        if self.mailbox_slots > 0:
            self.mailbox = Mailbox(len(self.owned), self.dim,
                                   slots=self.mailbox_slots)
        return old_memory, old_mailbox, old_local

    def release(self, nodes: np.ndarray) -> Dict[str, np.ndarray]:
        """Hand off *nodes*' rows (rebalance); shrinks this shard.

        Returns the handed-off state for :meth:`adopt` on the receiving
        shard and snapshots the new, smaller ownership so recovery can
        never resurrect released rows here.
        """
        if not self.alive:
            raise ReplicaDown(f"shard {self.shard_id} is down")
        nodes = np.sort(np.asarray(nodes, dtype=np.int64))
        local = self._local[nodes]
        if (local < 0).any():
            raise KeyError(f"shard {self.shard_id} releasing unowned nodes")
        out: Dict[str, np.ndarray] = {
            "nodes": nodes,
            "memory/data": self.memory.data.data[local].copy(),
            "memory/time": self.memory.time[local].copy(),
        }
        if self.mailbox is not None:
            out["mailbox/mail"] = self.mailbox.mail.data[local].copy()
            out["mailbox/time"] = self.mailbox.time[local].copy()
            if self.mailbox._next_slot is not None:
                out["mailbox/cursor"] = self.mailbox._next_slot[local].copy()
        keep = np.setdiff1d(self.owned, nodes)
        old_memory, old_mailbox, old_local = self._rebuild(keep)
        kept_local = old_local[self.owned]
        self.memory.data.data[...] = old_memory.data.data[kept_local]
        self.memory.time[...] = old_memory.time[kept_local]
        if self.mailbox is not None:
            self.mailbox.mail.data[...] = old_mailbox.mail.data[kept_local]
            self.mailbox.time[...] = old_mailbox.time[kept_local]
            if self.mailbox._next_slot is not None:
                self.mailbox._next_slot[...] = old_mailbox._next_slot[kept_local]
        self.digests = _StateDigests(self, self.chunk_rows)
        self.write_snapshot()
        return out

    def adopt(self, state: Dict[str, np.ndarray]) -> None:
        """Take ownership of rows released by another shard."""
        if not self.alive:
            raise ReplicaDown(f"shard {self.shard_id} is down")
        incoming = np.asarray(state["nodes"], dtype=np.int64)
        old_memory, old_mailbox, old_local = self._rebuild(
            np.union1d(self.owned, incoming)
        )
        prev = old_local[self.owned]
        had = prev >= 0
        self.memory.data.data[had] = old_memory.data.data[prev[had]]
        self.memory.time[had] = old_memory.time[prev[had]]
        new_local = self._local[incoming]
        self.memory.data.data[new_local] = state["memory/data"]
        self.memory.time[new_local] = state["memory/time"]
        if self.mailbox is not None:
            self.mailbox.mail.data[had] = old_mailbox.mail.data[prev[had]]
            self.mailbox.time[had] = old_mailbox.time[prev[had]]
            self.mailbox.mail.data[new_local] = state["mailbox/mail"]
            self.mailbox.time[new_local] = state["mailbox/time"]
            if self.mailbox._next_slot is not None:
                self.mailbox._next_slot[had] = old_mailbox._next_slot[prev[had]]
                self.mailbox._next_slot[new_local] = state["mailbox/cursor"]
        self.digests = _StateDigests(self, self.chunk_rows)
        self.write_snapshot()

    # ---- reporting / lifecycle -----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "owned_nodes": int(len(self.owned)),
            "alive": bool(self.alive),
            "applied_batches": self.applied_batches,
            "applied_events": self.applied_events,
            "duplicate_batches": self.duplicate_batches,
            "stale_rejects": self.stale_rejects,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "stalls": self.stalls,
            "last_seq": self.last_seq,
            "lease_epoch": self.lease_epoch,
            "member_id": self.member_id,
            "host": self.host,
        }
        if self.store is not None:
            out["wal_last_lsn"] = self.store.wal.last_lsn
        return out

    def close(self) -> None:
        """Idempotent; safe on crashed replicas (their store is gone)."""
        if self.store is not None:
            self.store.close()
            self.store = None

    def __repr__(self) -> str:
        state = (
            "recovering" if self.recovering
            else ("alive" if self.alive else "dead")
        )
        return (
            f"ShardReplica(shard={self.shard_id}, nodes={len(self.owned)}, "
            f"seq={self.last_seq}, {state})"
        )
