"""Simulated RPC channel between the coordinator and shard replicas.

Real clusters lose requests, lose replies, and talk to hosts that are
slow or gone; :class:`SimRpc` models exactly that failure surface on the
shared simulated clock, deterministically:

* the **send** and **reply** legs each consult the ``rpc.send`` /
  ``rpc.recv`` fault sites — a dropped leg means that attempt never
  completes;
* a **stalled** replica multiplies the service time of every call it
  handles (the ``shard.stall`` site sets the factor at the replica);
* an attempt exceeding the **timeout** is retried with exponential
  backoff, up to the retry budget, after which :class:`RpcTimeout`
  surfaces to the coordinator (which degrades to partial results);
* when the primary attempt is predicted to run past the **hedge delay**
  a second copy of the request is sent, and the faster of the two wins —
  hedging converts a dropped packet from a full timeout into roughly one
  extra service time.

No payload actually crosses the "wire": delivery runs ``on_deliver``
(the replica-side effect) and the caller reads results directly after
:meth:`call` returns — the channel models *time and loss*, not
serialization.  Because a delivered request whose *reply* is lost still
executed, replica-side effects must be idempotent (they are: shard
applies dedup on the batch sequence number).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..resilience.hooks import poke as _poke

__all__ = ["RpcTimeout", "RpcStats", "SimRpc"]


class RpcTimeout(RuntimeError):
    """Every attempt (and hedge) at one shard call timed out."""

    def __init__(self, shard: int, elapsed: float):
        super().__init__(
            f"rpc to shard {shard} timed out after {elapsed:.3g}s "
            "(retry budget exhausted)"
        )
        self.shard = int(shard)
        self.elapsed = float(elapsed)


@dataclass
class RpcStats:
    """Running channel counters (cluster-level, all shards)."""

    calls: int = 0
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    failures: int = 0
    dropped_sends: int = 0
    dropped_replies: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    ships: int = 0
    dropped_ships: int = 0
    dropped_acks: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "calls": self.calls,
            "attempts": self.attempts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "failures": self.failures,
            "dropped_sends": self.dropped_sends,
            "dropped_replies": self.dropped_replies,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "ships": self.ships,
            "dropped_ships": self.dropped_ships,
            "dropped_acks": self.dropped_acks,
        }


class SimRpc:
    """Deterministic lossy RPC with timeout, retry, backoff, and hedging.

    Args:
        clock: the shared simulated clock (read for stats only; the
            *caller* advances it by the returned elapsed time, so calls
            to several shards can overlap as one scatter-gather wave).
        service: nominal one-way service seconds per call.
        timeout: per-attempt completion deadline.
        retries: extra attempts after the first.
        backoff: base of the exponential retry backoff
            (``backoff * 2**attempt`` idle seconds after each timeout).
        hedge_delay: send a duplicate request when the primary has not
            completed by this long; ``None`` disables hedging.
    """

    def __init__(
        self,
        clock,
        service: float = 2.0e-4,
        timeout: float = 2.0e-3,
        retries: int = 2,
        backoff: float = 5.0e-4,
        hedge_delay: Optional[float] = 6.0e-4,
    ):
        if service <= 0 or timeout <= 0:
            raise ValueError("rpc service and timeout must be positive")
        if retries < 0:
            raise ValueError("rpc retries must be >= 0")
        self.clock = clock
        self.service = float(service)
        self.timeout = float(timeout)
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.hedge_delay = None if hedge_delay is None else float(hedge_delay)
        self.stats = RpcStats()

    # ---- one leg -------------------------------------------------------------------

    def _leg(self, shard: int, alive: bool, stall: float, extra: int,
             on_deliver: Optional[Callable[[], None]]) -> float:
        """Completion time of one request copy (inf = never completes).

        Executes ``on_deliver`` iff the request physically reached the
        replica — even when the reply is subsequently lost, mirroring the
        acked-but-lost window real RPC has.
        """
        self.stats.attempts += 1
        if _poke("rpc.send", shard=shard, extra=extra) == ("drop",):
            self.stats.dropped_sends += 1
            return math.inf
        if not alive:
            return math.inf  # host down: the request vanishes into the void
        if on_deliver is not None:
            on_deliver()
        service = self.service * max(1.0, float(stall))
        if _poke("rpc.recv", shard=shard, extra=extra + 1) == ("drop",):
            self.stats.dropped_replies += 1
            return math.inf
        return service

    # ---- the call ------------------------------------------------------------------

    def call(self, shard: int, alive: bool = True, stall: float = 1.0,
             extra: int = 0, on_deliver: Optional[Callable[[], None]] = None) -> float:
        """One reliable-ized shard call; returns its elapsed seconds.

        Runs the attempt/hedge/retry state machine against the fault
        sites and returns the total simulated time from first send to
        accepted reply.  Raises :class:`RpcTimeout` when the retry
        budget is exhausted — the caller decides whether that shard's
        contribution is droppable (partial-result scoring) or must be
        queued for redelivery (state application).

        ``extra`` decorrelates the deterministic fault decisions of
        distinct logical calls made at the same injector cursor; attempt
        and hedge legs further offset it internally.
        """
        elapsed = 0.0
        for attempt in range(self.retries + 1):
            key = extra + 1009 * attempt
            completion = self._leg(shard, alive, stall, key, on_deliver)
            if (
                self.hedge_delay is not None
                and completion > self.hedge_delay
                and self.hedge_delay < self.timeout
            ):
                # The primary is slow (or lost): fire a hedged duplicate
                # and take whichever copy answers first.
                self.stats.hedges += 1
                hedge = self.hedge_delay + self._leg(
                    shard, alive, stall, key + 500009, on_deliver
                )
                if hedge < completion:
                    completion = hedge
                    self.stats.hedge_wins += 1
            if completion <= self.timeout:
                self.stats.calls += 1
                return elapsed + completion
            self.stats.timeouts += 1
            elapsed += self.timeout + self.backoff * (2 ** attempt)
            if attempt < self.retries:
                self.stats.retries += 1
        self.stats.failures += 1
        raise RpcTimeout(shard, elapsed)

    # ---- log shipping --------------------------------------------------------------

    def ship(self, shard: int, member: int, alive: bool = True, extra: int = 0,
             on_deliver: Optional[Callable[[], None]] = None) -> "tuple[bool, bool]":
        """One synchronous log-shipping leg to a replica-group follower.

        Returns ``(delivered, acked)``.  The request leg consults the
        ``repl.ship`` site (a drop means the record never reached the
        follower — the group parks it for in-order redelivery) and the
        acknowledgement leg consults ``repl.ack`` (a drop means the
        follower *did* append durably but the primary never learned —
        the commit may fall under quorum without any divergence, and the
        eventual redelivery is absorbed by sequence idempotence).  No
        retry state machine here: ordering across a member's ships is
        owned by the group's per-member queue, which a blind rpc-level
        retry would violate.  Shipping rides the commit fan-out, which
        charges no request latency (mirroring :meth:`call`'s use there),
        so no elapsed time is returned.
        """
        self.stats.ships += 1
        if _poke("repl.ship", shard=shard, member=member, extra=extra) == ("drop",):
            self.stats.dropped_ships += 1
            return False, False
        if not alive:
            return False, False  # host down: the shipment vanishes
        if on_deliver is not None:
            on_deliver()
        if _poke("repl.ack", shard=shard, member=member, extra=extra + 1) == ("drop",):
            self.stats.dropped_acks += 1
            return True, False
        return True, True

    def __repr__(self) -> str:
        return (
            f"SimRpc(service={self.service:g}, timeout={self.timeout:g}, "
            f"retries={self.retries}, hedge={self.hedge_delay})"
        )
