"""The cluster coordinator: sharded serving with the single-node guarantees.

:class:`ServeCluster` mirrors the :class:`~repro.serve.runtime.ServeRuntime`
surface (``submit`` / ``step`` / ``drain`` / ``results`` / ``stats`` /
``close``) so the existing replay harness and chaos benchmarks drive a
cluster unchanged — but behind that surface each request fans out over N
:class:`~repro.cluster.replica.ShardReplica`s:

* **Scoring** is a scatter-gather read: the request's node rows are
  fetched from their owning shards over :class:`~repro.cluster.rpc.SimRpc`
  (timeout + retry + hedging).  A shard that is down, recovering, or
  unreachable contributes zero rows and the response is marked *partial*
  — the cluster answers with reduced fanout instead of failing.
* **Commits** are validated once at the coordinator (the same staged-NaN
  poison check the single runtime's post-apply validation would trip),
  stamped with a cluster sequence number, then routed to each touched
  shard, which WAL-logs its ownership-filtered sub-batch before applying
  it.  A sub-batch that cannot be delivered (shard dead or RPC budget
  exhausted) parks in that shard's pending queue and is redelivered —
  idempotently, by sequence number — when the shard rejoins.
* **Failures** are injected between requests (``shard.crash`` /
  ``shard.stall``) and detected by the
  :class:`~repro.cluster.supervisor.Supervisor`'s heartbeat loop, which
  drives WAL-replay takeover and hot-spot rebalancing.

Because every replica applies exactly the committed event sequence
(eventually — pending queues drain before :meth:`drain` returns) through
the same content-deterministic staging path, the assembled
:meth:`memory_image` / :meth:`mailbox_image` after any chaos schedule is
bit-identical to a clean single-runtime replay of the same admitted
stream.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..resilience.errors import TransientKernelError
from ..resilience.hooks import poke as _poke
from ..serve.admission import AdmissionController
from ..serve.clock import SimClock
from ..serve.commit import stage_updates
from ..serve.deadline import CostModel, DegradationLadder
from ..serve.events import EventBatch, RejectReason, validate_events
from ..serve.ingest import IngestPipeline
from ..serve.runtime import Request, RequestResult
from .partition import ShardRouter
from .replica import ReplicaDown, ShardReplica
from .rpc import RpcTimeout, SimRpc
from .supervisor import Supervisor

__all__ = ["ClusterConfig", "ShardedCostModel", "ServeCluster"]


@dataclass
class ClusterConfig:
    """Knobs for one :class:`ServeCluster` (all simulated-clock seconds).

    The RPC / heartbeat / recovery defaults are scaled to the serving
    cost model (full-rung service is ~1e-2s for a 100-event request):
    an RPC round trip is small against one request, a failover detects
    in a few heartbeats, and WAL-replay takeover costs about one
    request of wall time plus replay proportional to the log suffix.
    """

    num_shards: int = 4
    partition: str = "hash"  # 'hash' | 'temporal'
    seed: int = 0
    # RPC channel
    rpc_service: float = 2.0e-4
    rpc_timeout: float = 2.0e-3
    rpc_retries: int = 2
    rpc_backoff: float = 5.0e-4
    hedge_delay: Optional[float] = 6.0e-4
    # failure detection
    heartbeat_interval: float = 5.0e-3
    suspect_phi: float = 2.0
    dead_phi: float = 4.0
    # takeover model
    recovery_base: float = 1.0e-2
    recovery_per_batch: float = 1.0e-4
    stall_window: float = 2.0e-2
    # rebalance
    rebalance_window: float = 0.25
    rebalance_factor: float = 2.0
    rebalance_patience: int = 2
    rebalance_max_fraction: float = 0.25
    # durability
    durable_root: Optional[str] = None  # None -> private temp dir
    fsync: str = "batch"
    snapshot_every: int = 64

    def __post_init__(self):
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")


class ShardedCostModel:
    """Service-cost model for scatter-gather serving over live shards.

    Per-event work divides across the shards currently able to serve
    (the parallel speedup the cluster exists for); each request
    additionally pays the RPC rounds its rung needs — two gather waves
    for the sampling rungs, one for the cheap ones.  Duck-types
    :class:`~repro.serve.deadline.CostModel` for the ladder and the
    replay harness.
    """

    def __init__(self, cluster: "ServeCluster", base: Optional[CostModel] = None):
        self._cluster = cluster
        self._base = base or CostModel()
        self.per_event = self._base.per_event
        self.fixed = self._base.fixed
        self.reference_penalty = self._base.reference_penalty

    def estimate(self, level: str, n_events: int, ctx=None,
                 fetch_seconds: float = 0.0) -> float:
        live = max(1, self._cluster.live_shards())
        cost = self.fixed + self.per_event[level] * n_events / live
        rpc = self._cluster.rpc.service
        if level in ("full", "reduced"):
            cost += max(0.0, float(fetch_seconds)) + 2.0 * rpc
            if ctx is not None and ctx.is_degraded("kernel.sample"):
                cost *= self.reference_penalty
        else:
            cost += rpc
        return cost


class ServeCluster:
    """N-shard fault-tolerant serving behind the single-runtime surface.

    Args:
        graph: the shared :class:`~repro.core.graph.TGraph` topology.
        ctx: shared :class:`~repro.core.context.TContext`.
        sampler: :class:`~repro.core.sampler.TSampler` for sampling rungs.
        dim: memory/mailbox row width on every shard.
        config: :class:`ClusterConfig` (defaults used when ``None``).
        mailbox_slots: ring slots per node (0 disables mailboxes).
        clock / deadline / ladder / lateness / max_buffer / max_queue /
            shed_policy / rate / burst: exactly the
            :class:`~repro.serve.runtime.ServeRuntime` knobs.
        injector: optional fault injector whose cursor advances to
            ``(0, rid)`` per step (install it separately).
        stream: seeding event stream, required by the ``temporal``
            partition policy.
    """

    def __init__(
        self,
        graph,
        ctx,
        sampler,
        dim: int,
        config: Optional[ClusterConfig] = None,
        mailbox_slots: int = 1,
        clock: Optional[SimClock] = None,
        deadline: float = 1.0e-2,
        ladder: Optional[DegradationLadder] = None,
        lateness: float = 0.0,
        max_buffer: int = 10000,
        max_queue: int = 64,
        shed_policy: str = "reject-new",
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        injector=None,
        stream=None,
    ):
        self.graph = graph
        self.ctx = ctx
        self.sampler = sampler
        self.dim = int(dim)
        self.config = config or ClusterConfig()
        self.clock = clock or SimClock()
        self.deadline = float(deadline)
        self.injector = injector

        cfg = self.config
        self.router = ShardRouter.build(
            cfg.partition, graph.num_nodes, cfg.num_shards,
            seed=cfg.seed, stream=stream,
        )
        self._tmpdir = None
        root = cfg.durable_root
        if root is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            root = self._tmpdir.name
        self.replicas: List[ShardReplica] = [
            ShardReplica(
                i, self.router.owned_nodes(i), graph.num_nodes, self.dim,
                os.path.join(root, f"shard{i:03d}"),
                mailbox_slots=mailbox_slots, fsync=cfg.fsync,
                snapshot_every=cfg.snapshot_every,
            )
            for i in range(cfg.num_shards)
        ]
        self.rpc = SimRpc(
            self.clock, service=cfg.rpc_service, timeout=cfg.rpc_timeout,
            retries=cfg.rpc_retries, backoff=cfg.rpc_backoff,
            hedge_delay=cfg.hedge_delay,
        )
        self.supervisor = Supervisor(
            self.clock, self.replicas, self.router,
            heartbeat_interval=cfg.heartbeat_interval,
            suspect_phi=cfg.suspect_phi, dead_phi=cfg.dead_phi,
            recovery_base=cfg.recovery_base,
            recovery_per_batch=cfg.recovery_per_batch,
            rebalance_window=cfg.rebalance_window,
            rebalance_factor=cfg.rebalance_factor,
            rebalance_patience=cfg.rebalance_patience,
            rebalance_max_fraction=cfg.rebalance_max_fraction,
            on_recovered=self._drain_pending,
        )
        self.ladder = ladder or DegradationLadder(
            full_fanout=sampler.num_nbrs,
            cost_model=ShardedCostModel(self),
        )
        self.ingest = IngestPipeline(
            graph.num_nodes, lateness=lateness, max_buffer=max_buffer
        )
        self.admission = AdmissionController(
            self.clock, max_queue=max_queue, policy=shed_policy,
            rate=rate, burst=burst,
        )
        self.results: List[RequestResult] = []
        self._next_rid = 0
        self._closed = False
        self._partial_this_request = 0

        #: cluster commit sequence; every shard sub-batch carries it.
        self.seq = -1
        self.committed_watermark = -np.inf
        #: per-shard queues of ``(seq, sub_batch)`` awaiting redelivery.
        self._pending: Dict[int, List] = {
            i: [] for i in range(cfg.num_shards)
        }
        # cluster counters
        self.commits = 0
        self.commit_retries = 0
        self.rollbacks = 0
        self.partial_results = 0
        self.deferred_applies = 0
        self.redelivered = 0
        self.injected_crashes = 0
        self.injected_stalls = 0

    # ---- liveness ------------------------------------------------------------------

    def live_shards(self) -> int:
        """Shards currently able to serve gathers and applies."""
        return sum(
            1 for rep in self.replicas if rep.alive and not rep.recovering
        )

    def _chaos(self) -> None:
        """Consult the shard-level fault sites (between requests)."""
        now = self.clock.now()
        for i, rep in enumerate(self.replicas):
            if rep.alive and _poke("shard.crash", shard=i, extra=i):
                rep.crash()
                self.injected_crashes += 1
        for i, rep in enumerate(self.replicas):
            if not rep.alive or rep.recovering:
                continue
            factor = _poke("shard.stall", shard=i, extra=i)
            if factor:
                rep.stall(now, float(factor), self.config.stall_window)
                self.injected_stalls += 1

    # ---- submission (mirrors ServeRuntime.submit) ----------------------------------

    def submit(
        self,
        batch: EventBatch,
        deadline: Optional[float] = None,
        arrival: Optional[float] = None,
    ) -> bool:
        """Offer one request; returns False when it was shed on arrival."""
        now = self.clock.now() if arrival is None else float(arrival)
        req = Request(
            rid=self._next_rid,
            batch=batch,
            arrival=now,
            deadline=now + (self.deadline if deadline is None else float(deadline)),
        )
        self._next_rid += 1
        admitted = self.admission.offer(req)
        for shed in self.admission.drain_shed():
            self.ctx.count("serve:shed", 1)
            self.results.append(
                RequestResult(
                    shed.rid, "shed", "", None,
                    self.clock.now() - shed.arrival, "admission control",
                )
            )
        if admitted:
            self.ctx.count("serve:admitted", 1)
        return admitted

    # ---- serving -------------------------------------------------------------------

    def step(self) -> Optional[RequestResult]:
        """Serve the next queued request (None when the queue is idle)."""
        req = self.admission.poll()
        if req is None:
            return None
        if self.injector is not None:
            self.injector.advance(0, req.rid)
        self._chaos()
        self.supervisor.tick()

        remaining = req.deadline - self.clock.now()
        decision = self.ladder.decide(remaining, len(req.batch), self.ctx)
        self.clock.advance(decision.estimated_cost)

        self._partial_this_request = 0
        if decision.level == "timeout":
            scores, status, detail = None, "timeout", RejectReason.DEADLINE
        else:
            try:
                scores = self._score(req.batch, decision, req.rid)
                status, detail = "ok", decision.reason
            except TransientKernelError as err:
                self.ctx.record_kernel_fault(err.site)
                decision = decision.__class__(
                    "memory", 0, decision.estimated_cost,
                    f"kernel fault at {err.site}",
                )
                scores = self._score(req.batch, decision, req.rid)
                status, detail = "ok", decision.reason
            if decision.level != "full":
                self.ctx.count(f"serve:degraded:{decision.level}", 1)
            if self._partial_this_request:
                self.partial_results += 1
                self.ctx.count("serve:partial", 1)
                detail = (detail + "; " if detail else "") + (
                    f"partial: {self._partial_this_request} shard(s) unreachable"
                )

        self._ingest_and_commit(req.batch, req.rid)

        latency = self.clock.now() - req.arrival
        self.ctx.record_latency(latency)
        result = RequestResult(
            req.rid, status, decision.level, scores, latency, detail
        )
        self.results.append(result)
        return result

    def drain(self) -> List[RequestResult]:
        """Serve the queue, flush ingestion, and settle every failover.

        After ``drain`` returns no shard is mid-recovery and every
        pending sub-batch has been applied, so the assembled state images
        reflect the complete committed stream.
        """
        while self.step() is not None:
            pass
        tail = self.ingest.flush()
        if len(tail):
            self._commit(tail, rid=self._next_rid)
        self._settle()
        return self.results

    def _settle(self) -> None:
        """Complete all outstanding failovers and drain pending queues."""
        for i, rep in enumerate(self.replicas):
            if not rep.alive and not rep.recovering:
                # crashed but not yet declared by the detector
                self.supervisor.force_failover(i)
        guard = 0
        while any(rep.recovering for rep in self.replicas):
            ready = min(
                rep.ready_at for rep in self.replicas if rep.recovering
            )
            self.clock.advance_to(ready)
            self.supervisor.tick()
            guard += 1
            if guard > 4 * len(self.replicas) + 16:
                raise RuntimeError("cluster failed to settle recoveries")

    # ---- scatter-gather scoring ----------------------------------------------------

    def _gather(self, nodes: np.ndarray, extra: int) -> np.ndarray:
        """Memory rows for *nodes* from their owning shards.

        One scatter-gather wave: every reachable owning shard is called
        over the RPC channel; a shard that is down, recovering, or out of
        retry budget contributes zeros (partial result, reduced fanout).
        The wave's wall time is its *slowest* shard — calls overlap — and
        only the excess beyond the nominal round trip already priced by
        the cost model is charged to the clock.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        rows = np.zeros((len(nodes), self.dim), dtype=np.float32)
        if not len(nodes):
            return rows
        shards = self.router.shard_of(nodes)
        now = self.clock.now()
        slowest = 0.0
        for k, shard in enumerate(np.unique(shards)):
            rep = self.replicas[shard]
            if not rep.alive or rep.recovering:
                self._partial_this_request += 1
                continue
            try:
                elapsed = self.rpc.call(
                    int(shard), alive=rep.alive,
                    stall=rep.current_stall(now),
                    extra=extra + 17 * int(shard) + k,
                )
            except RpcTimeout:
                self._partial_this_request += 1
                continue
            idx = shards == shard
            rows[idx] = rep.gather(nodes[idx])
            slowest = max(slowest, elapsed)
        self.clock.advance(max(0.0, slowest - self.rpc.service))
        return rows

    def _score(self, batch: EventBatch, decision, rid: int) -> np.ndarray:
        """Link-prediction scores at the decided rung (junk-safe)."""
        if not len(batch):
            return np.empty(0, dtype=np.float32)
        ok, _ = validate_events(batch, self.graph.num_nodes)
        if not ok.all():
            scores = np.full(len(batch), np.nan, dtype=np.float32)
            if ok.any():
                scores[ok] = self._score(batch.take(ok), decision, rid)
            return scores
        nodes = np.concatenate([batch.src, batch.dst])
        times = np.concatenate([batch.ts, batch.ts])
        base = 104729 * (rid + 1)
        if decision.level in ("full", "reduced"):
            emb = self._embed_sampled(nodes, times, decision.fanout, base)
        elif decision.level == "cache":
            emb = self._embed_cached(nodes, times, base)
        else:  # 'memory'
            emb = self._gather(nodes, base)
        n = len(batch)
        logits = np.sum(emb[:n] * emb[n:], axis=1)
        return (1.0 / (1.0 + np.exp(-logits))).astype(np.float32)

    def _embed_sampled(self, nodes, times, fanout: int, extra: int) -> np.ndarray:
        """Shard-gathered rows enriched with sampled temporal neighbors."""
        res = self.sampler.sample_arrays(
            self.graph.csr(), nodes, times, ctx=self.ctx, num_nbrs=fanout
        )
        emb = self._gather(nodes, extra).copy()
        if len(res.srcnodes):
            agg = np.zeros_like(emb)
            counts = np.zeros(len(nodes), dtype=np.float32)
            np.add.at(agg, res.dstindex, self._gather(res.srcnodes, extra + 1))
            np.add.at(counts, res.dstindex, 1.0)
            hot = counts > 0
            emb[hot] = 0.5 * (emb[hot] + agg[hot] / counts[hot, None])
        cache = self.ctx.embed_cache(0)
        if cache.enabled:
            cache.store(nodes, times, emb)
        return emb

    def _embed_cached(self, nodes, times, extra: int) -> np.ndarray:
        cache = self.ctx.embed_cache(0)
        emb = self._gather(nodes, extra).copy()
        hits, values = cache.lookup(nodes, times)
        if values is not None and hits.any():
            emb[hits] = values[hits]
        return emb

    # ---- commit fan-out ------------------------------------------------------------

    def _ingest_and_commit(self, batch: EventBatch, rid: int) -> None:
        for attempt in range(3):
            try:
                released = self.ingest.push(batch)
                break
            except TransientKernelError as err:
                self.ctx.record_kernel_fault(err.site)
                if attempt == 2:
                    raise
        self._commit(released, rid)

    def _commit(self, released: EventBatch, rid: int) -> None:
        """Validate once at the coordinator, then fan out by ownership.

        The single runtime applies, validates, and rolls back a poisoned
        batch; staged values are a pure function of event content, so
        validating the staged rows *before* fan-out quarantines exactly
        the same batches without needing cross-shard two-phase commit.
        """
        if not len(released):
            return
        retries = 0
        while True:
            try:
                _poke("serve.commit")
                nodes, values, times = stage_updates(released, self.dim)
                break
            except TransientKernelError as err:
                self.ctx.record_kernel_fault(err.site)
                if retries >= 2:
                    raise
                retries += 1
                self.commit_retries += 1
        _poke("serve.poison", values=values)
        if not np.isfinite(values).all():
            self.rollbacks += 1
            self.ctx.count("serve:quarantined", len(released))
            self.ingest.quarantine_batch(
                released, "poisoned batch: non-finite staged values"
            )
            return
        self.seq += 1
        seq = self.seq
        now = self.clock.now()
        for shard, sub in sorted(self.router.split_batch(released).items()):
            rep = self.replicas[shard]
            ends = np.concatenate([sub.src, sub.dst])
            ends = ends[(ends >= 0) & (ends < self.graph.num_nodes)]
            owned_ends = ends[self.router.assign[ends] == shard]
            self.supervisor.note_load(shard, len(owned_ends), nodes=owned_ends)
            if not rep.alive or rep.recovering:
                self._pending[shard].append((seq, sub))
                self.deferred_applies += 1
                continue
            try:
                self.rpc.call(
                    shard, alive=rep.alive, stall=rep.current_stall(now),
                    extra=104729 * (rid + 1) + 31 * shard + 7,
                    on_deliver=lambda rep=rep, sub=sub, s=seq: rep.apply(sub, s),
                )
            except (RpcTimeout, ReplicaDown):
                # Maybe delivered (reply lost) — redelivery is idempotent
                # by sequence number, so parking it is always safe.
                self._pending[shard].append((seq, sub))
                self.deferred_applies += 1
        self.commits += 1
        self.committed_watermark = max(
            self.committed_watermark, float(released.ts.max())
        )

    def _drain_pending(self, shard: int) -> None:
        """Redeliver parked sub-batches to a freshly rejoined shard.

        Modeled as a reliable in-order redelivery channel (queues are
        appended in sequence order); already-applied sequence numbers —
        delivered-but-reply-lost attempts — are shard-side no-ops.
        """
        rep = self.replicas[shard]
        queue, self._pending[shard] = self._pending[shard], []
        for seq, sub in queue:
            rep.apply(sub, seq)
            self.redelivered += 1

    # ---- assembled state images ----------------------------------------------------

    def memory_image(self):
        """Global ``(data, time)`` memory arrays assembled from the shards.

        Every node's row comes from its owning shard, so after
        :meth:`drain` the image is directly comparable — bit-for-bit —
        with a single runtime's ``memory.data.data`` / ``memory.time``.
        """
        data = np.zeros((self.graph.num_nodes, self.dim), dtype=np.float32)
        time = np.zeros(self.graph.num_nodes, dtype=np.float64)
        for rep in self.replicas:
            if rep.memory is None:
                raise ReplicaDown(
                    f"shard {rep.shard_id} is down; drain() first"
                )
            data[rep.owned] = rep.memory.data.data
            time[rep.owned] = rep.memory.time
        return data, time

    def mailbox_image(self):
        """Global ``(mail, time, cursor)`` mailbox arrays from the shards."""
        first = self.replicas[0].mailbox
        if first is None:
            return None
        slots = first.slots
        n = self.graph.num_nodes
        shape = (n, self.dim) if slots == 1 else (n, slots, self.dim)
        tshape = (n,) if slots == 1 else (n, slots)
        mail = np.zeros(shape, dtype=np.float32)
        time = np.zeros(tshape, dtype=np.float64)
        cursor = np.zeros(n, dtype=np.int64) if slots > 1 else None
        for rep in self.replicas:
            if rep.mailbox is None:
                raise ReplicaDown(
                    f"shard {rep.shard_id} is down; drain() first"
                )
            mail[rep.owned] = rep.mailbox.mail.data
            time[rep.owned] = rep.mailbox.time
            if cursor is not None:
                cursor[rep.owned] = rep.mailbox._next_slot
        return mail, time, cursor

    # ---- reporting / lifecycle -----------------------------------------------------

    def pending_applies(self) -> int:
        return sum(len(q) for q in self._pending.values())

    def stats(self) -> Dict[str, object]:
        """Flat dict: serving counters plus cluster/rpc/per-shard rows."""
        out: Dict[str, object] = {}
        out.update({f"admission:{k}": v
                    for k, v in self.admission.stats.as_dict().items()})
        out.update({f"ingest:{k}": v
                    for k, v in self.ingest.stats.as_dict().items()})
        out.update({f"ladder:{k}": v
                    for k, v in sorted(self.ladder.decisions.items())})
        out["watermark"] = self.ingest.watermark
        out["committed_watermark"] = self.committed_watermark
        out["cluster:shards"] = self.config.num_shards
        out["cluster:live_shards"] = self.live_shards()
        out["cluster:partition"] = self.router.policy
        out["cluster:assignment_version"] = self.router.version
        out["cluster:commits"] = self.commits
        out["cluster:commit_retries"] = self.commit_retries
        out["cluster:rollbacks"] = self.rollbacks
        out["cluster:partial_results"] = self.partial_results
        out["cluster:deferred_applies"] = self.deferred_applies
        out["cluster:redelivered"] = self.redelivered
        out["cluster:pending_applies"] = self.pending_applies()
        out["cluster:injected_crashes"] = self.injected_crashes
        out["cluster:injected_stalls"] = self.injected_stalls
        out.update({f"cluster:{k}": v
                    for k, v in self.supervisor.stats.as_dict().items()})
        out.update({f"rpc:{k}": v for k, v in self.rpc.stats.as_dict().items()})
        for i, rep in enumerate(self.replicas):
            out.update({f"shard:{i}:{k}": v for k, v in rep.stats().items()})
        return out

    def close(self) -> None:
        """Idempotent teardown: every replica (dead ones included)."""
        if self._closed:
            return
        self._closed = True
        for rep in self.replicas:
            rep.close()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "ServeCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ServeCluster(shards={self.config.num_shards}, "
            f"live={self.live_shards()}, served={len(self.results)}, "
            f"clock={self.clock.now():.6g})"
        )
