"""The cluster coordinator: sharded serving with the single-node guarantees.

:class:`ServeCluster` mirrors the :class:`~repro.serve.runtime.ServeRuntime`
surface (``submit`` / ``step`` / ``drain`` / ``results`` / ``stats`` /
``close``) so the existing replay harness and chaos benchmarks drive a
cluster unchanged — but behind that surface each request fans out over N
:class:`~repro.cluster.replica.ShardReplica`s:

Each shard is a :class:`~repro.cluster.replication.ReplicaGroup` —
``replication_factor`` members on distinct hosts, one primary plus
followers — and the request path uses the group at both ends:

* **Scoring** is a scatter-gather read with **failover**: each touched
  shard's rows come from its preferred read member
  (:meth:`~repro.cluster.replication.ReplicaGroup.read_member`) over
  :class:`~repro.cluster.rpc.SimRpc` (timeout + retry + hedging); when
  that member is unreachable the gather retries the remaining serving
  members, so reads survive the detection→promotion window that a
  factor-1 cluster zero-fills.  Only when *every* member of a group is
  down do that shard's rows zero-fill — and then the response carries a
  per-row ``valid`` mask (rows from dead groups marked invalid) instead
  of silently serving zeros; ``strict_partials=False`` restores the
  legacy unmarked behavior.  ``staleness_bound`` picks between
  ``'bounded'`` follower reads (lag at most the follower's parked queue)
  and ``'strict'`` read-your-commits (block the gather on promotion).
* **Commits** are validated once at the coordinator (the same staged-NaN
  poison check the single runtime's post-apply validation would trip),
  stamped with a cluster sequence number, then **quorum log-shipped** to
  every member of each touched group
  (:meth:`~repro.cluster.replication.ReplicaGroup.ship`): each member
  WAL-logs its ownership-filtered sub-batch before applying it, and the
  commit is quorum-acked when ``ack_quorum`` members confirmed the
  durable append.  A member that cannot take the record now (down,
  dropped ship, RPC budget exhausted) gets it parked in its in-order
  queue and redelivered — idempotently, by sequence number — when it
  rejoins.
* **Failures** are injected between requests (``shard.crash`` /
  ``shard.stall``, per member) and detected by the
  :class:`~repro.cluster.supervisor.Supervisor`'s heartbeat loop, which
  drives lease-fenced promotion of the best follower, WAL-replay
  respawn + re-replication of dead members, and hot-spot rebalancing.

Because every group member applies exactly the committed event sequence
(eventually — member queues drain before :meth:`drain` returns) through
the same content-deterministic staging path, the assembled
:meth:`memory_image` / :meth:`mailbox_image` after any chaos schedule is
bit-identical to a clean single-runtime replay of the same admitted
stream — at any replication factor, killing up to ``factor - 1`` members
per group.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..integrity.scrubber import Scrubber
from ..resilience.errors import TransientKernelError
from ..resilience.hooks import poke as _poke
from ..serve.admission import AdmissionController
from ..serve.clock import SimClock
from ..serve.commit import stage_updates
from ..serve.deadline import CostModel, DegradationLadder
from ..serve.events import EventBatch, RejectReason, validate_events
from ..serve.ingest import IngestPipeline
from ..serve.runtime import Request, RequestResult
from .partition import ShardRouter, place_group_hosts
from .replica import ReplicaDown, ShardReplica
from .replication import ReplicaGroup
from .rpc import RpcTimeout, SimRpc
from .supervisor import Supervisor

__all__ = ["ClusterConfig", "ShardedCostModel", "ServeCluster"]


@dataclass
class ClusterConfig:
    """Knobs for one :class:`ServeCluster` (all simulated-clock seconds).

    The RPC / heartbeat / recovery defaults are scaled to the serving
    cost model (full-rung service is ~1e-2s for a 100-event request):
    an RPC round trip is small against one request, a failover detects
    in a few heartbeats, and WAL-replay takeover costs about one
    request of wall time plus replay proportional to the log suffix.
    """

    num_shards: int = 4
    partition: str = "hash"  # 'hash' | 'temporal'
    seed: int = 0
    # replication (factor 1 == the legacy single-replica cluster)
    replication_factor: int = 1
    ack_quorum: Optional[int] = None  # None -> majority (factor//2 + 1)
    staleness_bound: str = "bounded"  # 'bounded' | 'strict'
    strict_partials: bool = True  # False -> legacy unmarked zero-fill
    promote_seconds: float = 2.0e-3
    num_hosts: Optional[int] = None  # None -> max(shards, factor)
    # RPC channel
    rpc_service: float = 2.0e-4
    rpc_timeout: float = 2.0e-3
    rpc_retries: int = 2
    rpc_backoff: float = 5.0e-4
    hedge_delay: Optional[float] = 6.0e-4
    # failure detection
    heartbeat_interval: float = 5.0e-3
    suspect_phi: float = 2.0
    dead_phi: float = 4.0
    # takeover model
    recovery_base: float = 1.0e-2
    recovery_per_batch: float = 1.0e-4
    stall_window: float = 2.0e-2
    # rebalance
    rebalance_window: float = 0.25
    rebalance_factor: float = 2.0
    rebalance_patience: int = 2
    rebalance_max_fraction: float = 0.25
    rebalance_handoff_seconds: float = 2.0e-3
    # durability
    durable_root: Optional[str] = None  # None -> private temp dir
    fsync: str = "batch"
    snapshot_every: int = 64
    # integrity scrubbing
    scrub_interval: float = 0.25  # simulated seconds; <= 0 disables
    scrub_chunk_rows: int = 32

    def __post_init__(self):
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if self.staleness_bound not in ("bounded", "strict"):
            raise ValueError(
                f"staleness_bound {self.staleness_bound!r} "
                "(expected 'bounded' or 'strict')"
            )


class ShardedCostModel:
    """Service-cost model for scatter-gather serving over live shards.

    Per-event work divides across the shards currently able to serve
    (the parallel speedup the cluster exists for); each request
    additionally pays the RPC rounds its rung needs — two gather waves
    for the sampling rungs, one for the cheap ones.  Duck-types
    :class:`~repro.serve.deadline.CostModel` for the ladder and the
    replay harness.
    """

    def __init__(self, cluster: "ServeCluster", base: Optional[CostModel] = None):
        self._cluster = cluster
        self._base = base or CostModel()
        self.per_event = self._base.per_event
        self.fixed = self._base.fixed
        self.reference_penalty = self._base.reference_penalty

    def estimate(self, level: str, n_events: int, ctx=None,
                 fetch_seconds: float = 0.0) -> float:
        live = max(1, self._cluster.live_shards())
        cost = self.fixed + self.per_event[level] * n_events / live
        rpc = self._cluster.rpc.service
        if level in ("full", "reduced"):
            cost += max(0.0, float(fetch_seconds)) + 2.0 * rpc
            if ctx is not None and ctx.is_degraded("kernel.sample"):
                cost *= self.reference_penalty
        else:
            cost += rpc
        return cost


class ServeCluster:
    """N-shard fault-tolerant serving behind the single-runtime surface.

    Args:
        graph: the shared :class:`~repro.core.graph.TGraph` topology.
        ctx: shared :class:`~repro.core.context.TContext`.
        sampler: :class:`~repro.core.sampler.TSampler` for sampling rungs.
        dim: memory/mailbox row width on every shard.
        config: :class:`ClusterConfig` (defaults used when ``None``).
        mailbox_slots: ring slots per node (0 disables mailboxes).
        clock / deadline / ladder / lateness / max_buffer / max_queue /
            shed_policy / rate / burst: exactly the
            :class:`~repro.serve.runtime.ServeRuntime` knobs.
        injector: optional fault injector whose cursor advances to
            ``(0, rid)`` per step (install it separately).
        stream: seeding event stream, required by the ``temporal``
            partition policy.
    """

    def __init__(
        self,
        graph,
        ctx,
        sampler,
        dim: int,
        config: Optional[ClusterConfig] = None,
        mailbox_slots: int = 1,
        clock: Optional[SimClock] = None,
        deadline: float = 1.0e-2,
        ladder: Optional[DegradationLadder] = None,
        lateness: float = 0.0,
        max_buffer: int = 10000,
        max_queue: int = 64,
        shed_policy: str = "reject-new",
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        injector=None,
        stream=None,
    ):
        self.graph = graph
        self.ctx = ctx
        self.sampler = sampler
        self.dim = int(dim)
        self.config = config or ClusterConfig()
        self.clock = clock or SimClock()
        self.deadline = float(deadline)
        self.injector = injector

        cfg = self.config
        self.router = ShardRouter.build(
            cfg.partition, graph.num_nodes, cfg.num_shards,
            seed=cfg.seed, stream=stream,
        )
        self._tmpdir = None
        root = cfg.durable_root
        if root is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            root = self._tmpdir.name
        hosts = place_group_hosts(
            cfg.num_shards, cfg.replication_factor, num_hosts=cfg.num_hosts
        )
        self.groups: List[ReplicaGroup] = []
        for i in range(cfg.num_shards):
            members = [
                ShardReplica(
                    i, self.router.owned_nodes(i), graph.num_nodes, self.dim,
                    # member 0 keeps the legacy directory name so factor-1
                    # durable layouts are unchanged on disk
                    os.path.join(
                        root, f"shard{i:03d}" + ("" if m == 0 else f"-r{m}")
                    ),
                    mailbox_slots=mailbox_slots, fsync=cfg.fsync,
                    snapshot_every=cfg.snapshot_every,
                    chunk_rows=cfg.scrub_chunk_rows,
                    member_id=m, host=hosts[i][m],
                )
                for m in range(cfg.replication_factor)
            ]
            self.groups.append(
                ReplicaGroup(i, members, ack_quorum=cfg.ack_quorum)
            )
        self.rpc = SimRpc(
            self.clock, service=cfg.rpc_service, timeout=cfg.rpc_timeout,
            retries=cfg.rpc_retries, backoff=cfg.rpc_backoff,
            hedge_delay=cfg.hedge_delay,
        )
        self.supervisor = Supervisor(
            self.clock, self.groups, self.router,
            heartbeat_interval=cfg.heartbeat_interval,
            suspect_phi=cfg.suspect_phi, dead_phi=cfg.dead_phi,
            recovery_base=cfg.recovery_base,
            recovery_per_batch=cfg.recovery_per_batch,
            promote_seconds=cfg.promote_seconds,
            rebalance_window=cfg.rebalance_window,
            rebalance_factor=cfg.rebalance_factor,
            rebalance_patience=cfg.rebalance_patience,
            rebalance_max_fraction=cfg.rebalance_max_fraction,
            rebalance_handoff_seconds=cfg.rebalance_handoff_seconds,
        )
        self.scrubber = Scrubber(
            self.groups, self.clock, interval=cfg.scrub_interval,
            count=ctx.count,
        )
        self.ladder = ladder or DegradationLadder(
            full_fanout=sampler.num_nbrs,
            cost_model=ShardedCostModel(self),
        )
        self.ingest = IngestPipeline(
            graph.num_nodes, lateness=lateness, max_buffer=max_buffer
        )
        self.admission = AdmissionController(
            self.clock, max_queue=max_queue, policy=shed_policy,
            rate=rate, burst=burst,
        )
        self.results: List[RequestResult] = []
        self._next_rid = 0
        self._closed = False
        self._partial_this_request = 0

        #: cluster commit sequence; every shard sub-batch carries it.
        self.seq = -1
        self.committed_watermark = -np.inf
        # cluster counters
        self.commits = 0
        self.commit_retries = 0
        self.rollbacks = 0
        self.partial_results = 0
        self.injected_crashes = 0
        self.injected_stalls = 0
        self.injected_flips = 0
        #: endpoint rows served as zeros because a whole group was down.
        self.zero_rows = 0
        #: gathers answered by a follower instead of the primary.
        self.follower_reads = 0
        #: summed ``committed_seq - follower.last_seq`` over follower reads.
        self.staleness_lag = 0
        #: strict-staleness gathers that forced a promotion first.
        self.strict_fallbacks = 0

    # ---- liveness ------------------------------------------------------------------

    @property
    def replicas(self) -> List[ShardReplica]:
        """Each group's current primary (the legacy single-replica view)."""
        return [g.primary for g in self.groups]

    @property
    def deferred_applies(self) -> int:
        return sum(g.deferred for g in self.groups)

    @property
    def redelivered(self) -> int:
        return sum(g.redelivered for g in self.groups)

    def live_shards(self) -> int:
        """Shards with at least one member able to serve right now."""
        return sum(1 for g in self.groups if g.any_serving())

    def _chaos(self) -> None:
        """Consult the shard-level fault sites (between requests).

        Every group member is its own kill/stall target: the decision
        extra is ``shard + num_shards * member``, so member 0 of shard i
        keeps the factor-1 extra ``i`` (schedules written for the
        single-replica cluster target the same primary), and a schedule
        entry ``(epoch, batch, shard + num_shards * m)`` kills exactly
        follower ``m``.
        """
        now = self.clock.now()
        n = self.config.num_shards
        for i, group in enumerate(self.groups):
            for m, rep in enumerate(group.members):
                if rep.alive and _poke(
                    "shard.crash", shard=i, extra=i + n * m
                ):
                    rep.crash()
                    self.injected_crashes += 1
        for i, group in enumerate(self.groups):
            for m, rep in enumerate(group.members):
                if not rep.alive or rep.recovering:
                    continue
                factor = _poke("shard.stall", shard=i, extra=i + n * m)
                if factor:
                    rep.stall(now, float(factor), self.config.stall_window)
                    self.injected_stalls += 1
        for i, group in enumerate(self.groups):
            for m, rep in enumerate(group.members):
                if not rep.alive or rep.recovering:
                    continue
                directive = _poke("mem.flip", shard=i, extra=i + n * m)
                if directive is not None and directive[0] == "flip":
                    if self._apply_bitflip(group, m, directive):
                        self.injected_flips += 1
                        self.ctx.count("integrity:injected_flips", 1)

    def _apply_bitflip(self, group, member: int, directive) -> bool:
        """Flip one live-state bit of *member*, bypassing the write path.

        The directive's byte index is drawn from a huge nominal space and
        reduced modulo the targeted tier's actual byte size, so one
        deterministic decision lands somewhere valid in any state shape.
        Returns False when the tier holds no bytes to corrupt (e.g. a
        ``wal`` flip against a log whose segments are all empty).
        """
        _, tier, byte, bit = directive
        mask = np.uint8(1 << bit)
        rep = group.members[member]
        if tier == "wal":
            if rep.store is None:
                return False
            paths = [
                p for p in rep.store.wal.segment_paths()
                if os.path.getsize(p) > 16  # past the segment header
            ]
            if not paths:
                return False
            path = paths[byte % len(paths)]
            size = os.path.getsize(path)
            with open(path, "r+b") as fh:
                fh.seek(16 + byte % (size - 16))
                old = fh.read(1)
                fh.seek(-1, os.SEEK_CUR)
                fh.write(bytes([old[0] ^ int(mask)]))
            return True
        if tier == "cold":
            entries = self.scrubber._cold
            if not entries:
                return False
            cold = entries[byte % len(entries)]["tier"]
            if cold._nrows == 0:
                return False
            flat = np.asarray(
                cold._rows[: cold._nrows]
            ).view(np.uint8).reshape(-1)
            flat[byte % len(flat)] ^= mask
            return True
        if tier == "mailbox":
            mb = rep.mailbox
            if mb is None:
                return False
            # The ring cursor is digest-covered but not a flip target: a
            # corrupted cursor steers *later* writes to the wrong slot,
            # and once the write path re-records those rows no digest can
            # tell the state from a clean one — an unrepairable-by-design
            # hole rather than the detect-and-repair cycle under test.
            arrays = [mb.mail.data, mb.time]
        else:  # 'memory'
            if rep.memory is None:
                return False
            arrays = [rep.memory.data.data, rep.memory.time]
        off = byte % sum(a.nbytes for a in arrays)
        for arr in arrays:
            if off < arr.nbytes:
                arr.view(np.uint8).reshape(-1)[off] ^= mask
                return True
            off -= arr.nbytes
        return False

    # ---- submission (mirrors ServeRuntime.submit) ----------------------------------

    def submit(
        self,
        batch: EventBatch,
        deadline: Optional[float] = None,
        arrival: Optional[float] = None,
    ) -> bool:
        """Offer one request; returns False when it was shed on arrival."""
        now = self.clock.now() if arrival is None else float(arrival)
        req = Request(
            rid=self._next_rid,
            batch=batch,
            arrival=now,
            deadline=now + (self.deadline if deadline is None else float(deadline)),
        )
        self._next_rid += 1
        admitted = self.admission.offer(req)
        for shed in self.admission.drain_shed():
            self.ctx.count("serve:shed", 1)
            self.results.append(
                RequestResult(
                    shed.rid, "shed", "", None,
                    self.clock.now() - shed.arrival, "admission control",
                )
            )
        if admitted:
            self.ctx.count("serve:admitted", 1)
        return admitted

    # ---- serving -------------------------------------------------------------------

    def step(self) -> Optional[RequestResult]:
        """Serve the next queued request (None when the queue is idle)."""
        req = self.admission.poll()
        if req is None:
            return None
        if self.injector is not None:
            self.injector.advance(0, req.rid)
        self._chaos()
        self.supervisor.tick()
        self.scrubber.maybe_scrub()

        remaining = req.deadline - self.clock.now()
        decision = self.ladder.decide(remaining, len(req.batch), self.ctx)
        self.clock.advance(decision.estimated_cost)

        self._partial_this_request = 0
        valid = None
        if decision.level == "timeout":
            scores, status, detail = None, "timeout", RejectReason.DEADLINE
        else:
            try:
                scores, valid = self._score(req.batch, decision, req.rid)
                status, detail = "ok", decision.reason
            except TransientKernelError as err:
                self.ctx.record_kernel_fault(err.site)
                decision = decision.__class__(
                    "memory", 0, decision.estimated_cost,
                    f"kernel fault at {err.site}",
                )
                scores, valid = self._score(req.batch, decision, req.rid)
                status, detail = "ok", decision.reason
            if decision.level != "full":
                self.ctx.count(f"serve:degraded:{decision.level}", 1)
            if self._partial_this_request:
                self.partial_results += 1
                self.ctx.count("serve:partial", 1)
                detail = (detail + "; " if detail else "") + (
                    f"partial: {self._partial_this_request} shard(s) unreachable"
                )

        self._ingest_and_commit(req.batch, req.rid)

        latency = self.clock.now() - req.arrival
        self.ctx.record_latency(latency)
        result = RequestResult(
            req.rid, status, decision.level, scores, latency, detail,
            valid=valid if self.config.strict_partials else None,
        )
        self.results.append(result)
        return result

    def drain(self) -> List[RequestResult]:
        """Serve the queue, flush ingestion, and settle every failover.

        After ``drain`` returns no shard is mid-recovery and every
        pending sub-batch has been applied, so the assembled state images
        reflect the complete committed stream.
        """
        while self.step() is not None:
            pass
        tail = self.ingest.flush()
        if len(tail):
            self._commit(tail, rid=self._next_rid)
        self._settle()
        # Terminal anti-entropy pass: any flip still hiding (injected
        # after the last periodic cycle) is caught before the state
        # images are read as ground truth.
        self.scrubber.scrub_now()
        return self.results

    def _settle(self) -> None:
        """Complete all outstanding failovers and drain member queues."""
        for i, group in enumerate(self.groups):
            for m, rep in enumerate(group.members):
                if not rep.alive and not rep.recovering:
                    # crashed but not yet declared by the detector
                    self.supervisor.force_failover(i, member=m)

        def _recovering():
            return [
                rep for g in self.groups for rep in g.members if rep.recovering
            ]

        guard = 0
        members_total = sum(g.factor for g in self.groups)
        while _recovering():
            ready = min(rep.ready_at for rep in _recovering())
            self.clock.advance_to(ready)
            self.supervisor.tick()
            guard += 1
            if guard > 4 * members_total + 16:
                raise RuntimeError("cluster failed to settle recoveries")
        for i, group in enumerate(self.groups):
            for m in range(group.factor):
                group.drain_member(m)
            if group.any_serving():
                self.supervisor.ensure_primary(i)

    # ---- scatter-gather scoring ----------------------------------------------------

    def _gather(self, nodes: np.ndarray, extra: int):
        """Memory rows for *nodes* from their owning groups.

        Returns ``(rows, ok)`` — the gathered ``(n, dim)`` rows and a
        boolean per-row validity mask.  One scatter-gather wave: each
        touched shard is read from its preferred member
        (primary, else the most-caught-up serving follower); a failed
        attempt (timeout, crash mid-wave) fails over to the remaining
        serving members of the group, so rows zero-fill **only** when a
        whole group is down — and then their mask rows go False instead
        of the zeros passing silently.  The wave's wall time is its
        slowest shard — calls overlap — and only the excess beyond the
        nominal round trip already priced by the cost model is charged
        to the clock.

        Under ``staleness_bound='strict'`` a gather about to read a
        follower first forces promotion (read-your-commits); under
        ``'bounded'`` the follower answers immediately, stale by at most
        its parked queue.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        rows = np.zeros((len(nodes), self.dim), dtype=np.float32)
        ok = np.ones(len(nodes), dtype=bool)
        if not len(nodes):
            return rows, ok
        shards = self.router.shard_of(nodes)
        now = self.clock.now()
        strict = self.config.staleness_bound == "strict"
        slowest = 0.0
        for k, shard in enumerate(np.unique(shards)):
            group = self.groups[int(shard)]
            ridx = group.read_member()
            if strict and ridx is not None and ridx != group.primary_idx:
                # Read-your-commits: no follower read while a promotion
                # can still give this gather a real primary.
                if self.supervisor.ensure_primary(int(shard)):
                    self.strict_fallbacks += 1
                ridx = group.read_member()
            candidates = [] if ridx is None else [ridx] + [
                i for i in range(group.factor)
                if i != ridx and group.serving(i)
            ]
            idx = shards == shard
            served = False
            for ridx2 in candidates:
                member = group.members[ridx2]
                try:
                    elapsed = self.rpc.call(
                        int(shard), alive=member.alive,
                        stall=member.current_stall(now),
                        extra=extra + 17 * int(shard) + k + 7919 * ridx2,
                    )
                except RpcTimeout:
                    continue  # fail over to the next serving member
                # Read-repair: during a suspect window (a skipped scrub
                # cycle) verify exactly the chunks this read touches
                # before any row is served.
                self.scrubber.guard_read(int(shard), group, ridx2, nodes[idx])
                rows[idx] = member.gather(nodes[idx])
                slowest = max(slowest, elapsed)
                if ridx2 != group.primary_idx:
                    self.follower_reads += 1
                    self.staleness_lag += max(
                        0, group.committed_seq - member.last_seq
                    )
                served = True
                break
            if not served:
                self._partial_this_request += 1
                n_zero = int(idx.sum())
                ok[idx] = False
                self.zero_rows += n_zero
                self.ctx.count("serve:zero_rows", n_zero)
        self.clock.advance(max(0.0, slowest - self.rpc.service))
        return rows, ok

    def _score(self, batch: EventBatch, decision, rid: int):
        """Link-prediction scores at the decided rung (junk-safe).

        Returns ``(scores, valid)``: junk events score NaN with
        ``valid=False``; a well-formed event is valid iff *both* its
        endpoint rows came from a live group member (a zero-filled
        endpoint poisons the dot product, so its score is marked).
        """
        if not len(batch):
            empty = np.empty(0, dtype=np.float32)
            return empty, np.ones(0, dtype=bool)
        ok, _ = validate_events(batch, self.graph.num_nodes)
        if not ok.all():
            scores = np.full(len(batch), np.nan, dtype=np.float32)
            valid = np.zeros(len(batch), dtype=bool)
            if ok.any():
                scores[ok], valid[ok] = self._score(
                    batch.take(ok), decision, rid
                )
            return scores, valid
        nodes = np.concatenate([batch.src, batch.dst])
        times = np.concatenate([batch.ts, batch.ts])
        base = 104729 * (rid + 1)
        if decision.level in ("full", "reduced"):
            emb, rows_ok = self._embed_sampled(
                nodes, times, decision.fanout, base
            )
        elif decision.level == "cache":
            emb, rows_ok = self._embed_cached(nodes, times, base)
        else:  # 'memory'
            emb, rows_ok = self._gather(nodes, base)
        n = len(batch)
        logits = np.sum(emb[:n] * emb[n:], axis=1)
        scores = (1.0 / (1.0 + np.exp(-logits))).astype(np.float32)
        return scores, rows_ok[:n] & rows_ok[n:]

    def _embed_sampled(self, nodes, times, fanout: int, extra: int):
        """Shard-gathered rows enriched with sampled temporal neighbors.

        A failed *neighbor* gather only reduces the enrichment (that is
        already the reduced-fanout contract), so the validity mask is the
        endpoint rows' own — neighbor loss never invalidates a score.
        """
        res = self.sampler.sample_arrays(
            self.graph.csr(), nodes, times, ctx=self.ctx, num_nbrs=fanout
        )
        rows, ok = self._gather(nodes, extra)
        emb = rows.copy()
        if len(res.srcnodes):
            agg = np.zeros_like(emb)
            counts = np.zeros(len(nodes), dtype=np.float32)
            nbr_rows, _ = self._gather(res.srcnodes, extra + 1)
            np.add.at(agg, res.dstindex, nbr_rows)
            np.add.at(counts, res.dstindex, 1.0)
            hot = counts > 0
            emb[hot] = 0.5 * (emb[hot] + agg[hot] / counts[hot, None])
        cache = self.ctx.embed_cache(0)
        if cache.enabled:
            cache.store(nodes, times, emb)
        return emb, ok

    def _embed_cached(self, nodes, times, extra: int):
        cache = self.ctx.embed_cache(0)
        rows, ok = self._gather(nodes, extra)
        emb = rows.copy()
        hits, values = cache.lookup(nodes, times)
        if values is not None and hits.any():
            emb[hits] = values[hits]
            # a cache hit replaces a zero-filled row with real state
            ok = ok | hits
        return emb, ok

    # ---- commit fan-out ------------------------------------------------------------

    def _ingest_and_commit(self, batch: EventBatch, rid: int) -> None:
        for attempt in range(3):
            try:
                released = self.ingest.push(batch)
                break
            except TransientKernelError as err:
                self.ctx.record_kernel_fault(err.site)
                if attempt == 2:
                    raise
        self._commit(released, rid)

    def _commit(self, released: EventBatch, rid: int) -> None:
        """Validate once at the coordinator, then fan out by ownership.

        The single runtime applies, validates, and rolls back a poisoned
        batch; staged values are a pure function of event content, so
        validating the staged rows *before* fan-out quarantines exactly
        the same batches without needing cross-shard two-phase commit.
        """
        if not len(released):
            return
        retries = 0
        while True:
            try:
                _poke("serve.commit")
                nodes, values, times = stage_updates(released, self.dim)
                break
            except TransientKernelError as err:
                self.ctx.record_kernel_fault(err.site)
                if retries >= 2:
                    raise
                retries += 1
                self.commit_retries += 1
        _poke("serve.poison", values=values)
        if not np.isfinite(values).all():
            self.rollbacks += 1
            self.ctx.count("serve:quarantined", len(released))
            self.ingest.quarantine_batch(
                released, "poisoned batch: non-finite staged values"
            )
            return
        self.seq += 1
        seq = self.seq
        now = self.clock.now()
        for shard, sub in sorted(self.router.split_batch(released).items()):
            group = self.groups[shard]
            ends = np.concatenate([sub.src, sub.dst])
            ends = ends[(ends >= 0) & (ends < self.graph.num_nodes)]
            owned_ends = ends[self.router.assign[ends] == shard]
            self.supervisor.note_load(shard, len(owned_ends), nodes=owned_ends)
            if group.serving_primary() is None and group.any_serving():
                # A commit needs a leased primary to sequence under; a
                # serving follower means promotion can happen right now
                # instead of parking the record for the respawn.
                self.supervisor.ensure_primary(shard)
            group.ship(
                sub, seq, self.rpc, now,
                extra=104729 * (rid + 1) + 31 * shard + 7,
            )
        self.commits += 1
        self.committed_watermark = max(
            self.committed_watermark, float(released.ts.max())
        )

    # ---- assembled state images ----------------------------------------------------

    def memory_image(self):
        """Global ``(data, time)`` memory arrays assembled from the shards.

        Every node's row comes from its owning shard, so after
        :meth:`drain` the image is directly comparable — bit-for-bit —
        with a single runtime's ``memory.data.data`` / ``memory.time``.
        """
        data = np.zeros((self.graph.num_nodes, self.dim), dtype=np.float32)
        time = np.zeros(self.graph.num_nodes, dtype=np.float64)
        for rep in self.replicas:
            if rep.memory is None:
                raise ReplicaDown(
                    f"shard {rep.shard_id} is down; drain() first"
                )
            data[rep.owned] = rep.memory.data.data
            time[rep.owned] = rep.memory.time
        return data, time

    def mailbox_image(self):
        """Global ``(mail, time, cursor)`` mailbox arrays from the shards."""
        first = self.replicas[0].mailbox
        if first is None:
            return None
        slots = first.slots
        n = self.graph.num_nodes
        shape = (n, self.dim) if slots == 1 else (n, slots, self.dim)
        tshape = (n,) if slots == 1 else (n, slots)
        mail = np.zeros(shape, dtype=np.float32)
        time = np.zeros(tshape, dtype=np.float64)
        cursor = np.zeros(n, dtype=np.int64) if slots > 1 else None
        for rep in self.replicas:
            if rep.mailbox is None:
                raise ReplicaDown(
                    f"shard {rep.shard_id} is down; drain() first"
                )
            mail[rep.owned] = rep.mailbox.mail.data
            time[rep.owned] = rep.mailbox.time
            if cursor is not None:
                cursor[rep.owned] = rep.mailbox._next_slot
        return mail, time, cursor

    # ---- reporting / lifecycle -----------------------------------------------------

    def pending_applies(self) -> int:
        return sum(g.pending_applies() for g in self.groups)

    def stats(self) -> Dict[str, object]:
        """Flat dict: serving counters plus cluster/rpc/per-shard rows."""
        out: Dict[str, object] = {}
        out.update({f"admission:{k}": v
                    for k, v in self.admission.stats.as_dict().items()})
        out.update({f"ingest:{k}": v
                    for k, v in self.ingest.stats.as_dict().items()})
        out.update({f"ladder:{k}": v
                    for k, v in sorted(self.ladder.decisions.items())})
        out["watermark"] = self.ingest.watermark
        out["committed_watermark"] = self.committed_watermark
        out["cluster:shards"] = self.config.num_shards
        out["cluster:replication_factor"] = self.config.replication_factor
        out["cluster:live_shards"] = self.live_shards()
        out["cluster:partition"] = self.router.policy
        out["cluster:assignment_version"] = self.router.version
        out["cluster:commits"] = self.commits
        out["cluster:commit_retries"] = self.commit_retries
        out["cluster:rollbacks"] = self.rollbacks
        out["cluster:partial_results"] = self.partial_results
        out["cluster:deferred_applies"] = self.deferred_applies
        out["cluster:redelivered"] = self.redelivered
        out["cluster:pending_applies"] = self.pending_applies()
        out["cluster:injected_crashes"] = self.injected_crashes
        out["cluster:injected_stalls"] = self.injected_stalls
        out["cluster:injected_flips"] = self.injected_flips
        out["cluster:zero_rows"] = self.zero_rows
        out["cluster:follower_reads"] = self.follower_reads
        out["cluster:staleness_lag"] = self.staleness_lag
        out["cluster:strict_fallbacks"] = self.strict_fallbacks
        out.update({f"cluster:{k}": v
                    for k, v in self.supervisor.stats.as_dict().items()})
        out.update({f"rpc:{k}": v for k, v in self.rpc.stats.as_dict().items()})
        out.update(self.scrubber.stats())
        for i, rep in enumerate(self.replicas):
            out.update({f"shard:{i}:{k}": v for k, v in rep.stats().items()})
        for i, group in enumerate(self.groups):
            out.update({f"group:{i}:{k}": v
                        for k, v in group.stats().items()})
        return out

    def close(self) -> None:
        """Idempotent teardown: every group member (dead ones included)."""
        if self._closed:
            return
        self._closed = True
        for group in self.groups:
            for rep in group.members:
                rep.close()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "ServeCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ServeCluster(shards={self.config.num_shards}, "
            f"live={self.live_shards()}, served={len(self.results)}, "
            f"clock={self.clock.now():.6g})"
        )
